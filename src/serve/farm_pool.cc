#include "serve/farm_pool.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "obs/trace_collector.h"
#include "util/logging.h"
#include "util/strings.h"

namespace apichecker::serve {

const char* PoolRejectReasonName(PoolRejectReason reason) {
  switch (reason) {
    case PoolRejectReason::kNoHealthyFarms:
      return "no healthy farms";
    case PoolRejectReason::kRetryBudgetExhausted:
      return "retry budget exhausted";
    case PoolRejectReason::kClosed:
      return "farm pool closed";
  }
  return "unknown";
}

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

std::string FarmSeriesName(const char* base, uint32_t farm_id) {
  return obs::LabeledSeriesName(base, "farm", util::StrFormat("%u", farm_id));
}

std::string BreakerOpenSeriesName(uint32_t farm_id, const char* reason) {
  return obs::LabeledSeriesName2(obs::names::kServeFarmBreakerOpenTotal, "farm",
                                 util::StrFormat("%u", farm_id), "reason", reason);
}

std::vector<std::unique_ptr<fabric::FarmBackend>> MakeLocalFarmBackends(
    const android::ApiUniverse& universe, const FarmPoolConfig& config,
    const emu::FarmConfig& farm_template) {
  const size_t num_farms = std::max<size_t>(1, config.num_farms);
  std::vector<std::unique_ptr<fabric::FarmBackend>> backends;
  backends.reserve(num_farms);
  for (size_t i = 0; i < num_farms; ++i) {
    emu::FarmConfig farm_config = farm_template;
    farm_config.farm_id = static_cast<uint32_t>(i);
    farm_config.fault_plan = config.fault_plan;
    backends.push_back(
        std::make_unique<fabric::LocalFarmBackend>(universe, std::move(farm_config)));
  }
  return backends;
}

FarmPool::FarmPool(const android::ApiUniverse& universe, FarmPoolConfig config,
                   const emu::FarmConfig& farm_template, rt::Runtime* runtime)
    : FarmPool(config, MakeLocalFarmBackends(universe, config, farm_template),
               runtime) {}

FarmPool::FarmPool(FarmPoolConfig config,
                   std::vector<std::unique_ptr<fabric::FarmBackend>> backends,
                   rt::Runtime* runtime)
    : config_(config), backends_(std::move(backends)) {
  const size_t num_farms = backends_.size();
  config_.num_farms = num_farms;
  config_.max_attempts = std::max<size_t>(1, config_.max_attempts);
  config_.breaker_failure_streak = std::max<size_t>(1, config_.breaker_failure_streak);

  if (runtime == nullptr) {
    // Standalone construction (tests, benches): a private runtime with one
    // worker per farm plus one spare keeps M farms executing concurrently.
    owned_runtime_ =
        std::make_unique<rt::Runtime>(rt::RuntimeOptions{num_farms + 1});
    runtime = owned_runtime_.get();
  }
  rt_ = runtime;

  queues_.resize(num_farms);
  in_flight_.assign(num_farms, 0);
  worker_active_.assign(num_farms, 0);
  health_.resize(num_farms);
  farm_stats_.resize(num_farms);
  for (size_t i = 0; i < num_farms; ++i) {
    farm_stats_[i].farm_id = static_cast<uint32_t>(i);
  }

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.gauge(obs::names::kServeFarmPoolSize).Set(static_cast<double>(num_farms));
  metrics.gauge(obs::names::kServeFarmHealthy).Set(static_cast<double>(num_farms));

  // Health listeners before any dispatch can run: a remote backend may report
  // its first connection-loss transition the moment its monitor starts
  // probing.
  for (size_t i = 0; i < num_farms; ++i) {
    backends_[i]->SetHealthListener(
        [this, i](fabric::FarmBackend::Health health, const std::string& reason) {
          OnBackendHealth(i, health, reason);
        });
  }
}

FarmPool::~FarmPool() { Close(); }

void FarmPool::Close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
    // Everything still queued (retries included) has an active dispatch task
    // by construction — every push schedules one. Wait until the last task
    // deactivates; from then on the pool never posts to the runtime again.
    cv_.wait(lock, [&] {
      if (outstanding_ != 0) {
        return false;
      }
      for (char active : worker_active_) {
        if (active) {
          return false;
        }
      }
      return true;
    });
  }
  // Stop backend monitors only after the drain: the health listeners they
  // fire lock mu_, which must outlive them (member order destroys mu_ before
  // backends_). After StopMonitor returns no listener runs again.
  for (auto& backend : backends_) {
    backend->StopMonitor();
  }
  if (owned_runtime_ != nullptr) {
    owned_runtime_->Shutdown();
  }
}

void FarmPool::ScheduleFarmLocked(size_t farm_index) {
  if (worker_active_[farm_index] || queues_[farm_index].empty()) {
    return;
  }
  worker_active_[farm_index] = 1;
  rt_->Post([this, farm_index] { RunFarm(farm_index); });
}

size_t FarmPool::HealthyFarmsLocked() const {
  size_t healthy = 0;
  for (const FarmHealth& h : health_) {
    healthy += h.state == BreakerState::kClosed ? 1 : 0;
  }
  return healthy;
}

void FarmPool::PublishHealthGaugeLocked() const {
  obs::MetricsRegistry::Default()
      .gauge(obs::names::kServeFarmHealthy)
      .Set(static_cast<double>(HealthyFarmsLocked()));
}

size_t FarmPool::healthy_farms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return HealthyFarmsLocked();
}

std::optional<size_t> FarmPool::RouteLocked(const PoolBatch& batch) {
  const Clock::time_point now = Clock::now();
  // Two passes: closed breakers first; a cooled-down open breaker is only
  // used when no fully healthy farm remains, and then as a single half-open
  // probe. Within a pass: least loaded wins, affinity breaks ties.
  auto pick = [&](bool probe_pass) -> std::optional<size_t> {
    size_t best_load = std::numeric_limits<size_t>::max();
    std::vector<size_t> candidates;
    for (size_t i = 0; i < backends_.size(); ++i) {
      if (batch.tried[i]) {
        continue;
      }
      const FarmHealth& h = health_[i];
      if (!probe_pass ? h.state != BreakerState::kClosed
                      : h.state != BreakerState::kOpen || now < h.open_until) {
        continue;
      }
      const size_t load = queues_[i].size() + (in_flight_[i] ? 1 : 0);
      if (load < best_load) {
        best_load = load;
        candidates.clear();
      }
      if (load == best_load) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      return std::nullopt;
    }
    return candidates[batch.affinity % candidates.size()];
  };

  if (auto farm = pick(/*probe_pass=*/false)) {
    return farm;
  }
  if (auto farm = pick(/*probe_pass=*/true)) {
    health_[*farm].state = BreakerState::kHalfOpen;
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
    metrics.counter(obs::names::kServeFarmBreakerReprobeTotal).Increment();
    metrics.counter(FarmSeriesName(obs::names::kServeFarmBreakerReprobeTotal,
                                   farm_stats_[*farm].farm_id))
        .Increment();
    return farm;
  }
  return std::nullopt;
}

void FarmPool::RecordSuccessLocked(size_t farm_index, const emu::BatchResult& result,
                                   bool was_retry) {
  FarmHealth& h = health_[farm_index];
  const bool was_unhealthy = h.state != BreakerState::kClosed;
  h.consecutive_failures = 0;
  h.state = BreakerState::kClosed;
  h.conn_lost = false;  // A completed batch proves the link is up.
  if (was_unhealthy) {
    APICHECKER_SLOG(Info, "serve.farm_pool.breaker_closed")
        .With("farm", farm_stats_[farm_index].farm_id);
    PublishHealthGaugeLocked();
  }
  FarmStats& stats = farm_stats_[farm_index];
  ++stats.batches_completed;
  stats.retries_absorbed += was_retry ? 1 : 0;
  stats.busy_minutes += result.makespan_minutes;
}

void FarmPool::RecordFaultLocked(size_t farm_index, bool transport_fault) {
  FarmHealth& h = health_[farm_index];
  FarmStats& stats = farm_stats_[farm_index];
  ++stats.faults;
  ++faults_;
  ++h.consecutive_failures;

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kServeFarmFaultsTotal).Increment();
  metrics.counter(FarmSeriesName(obs::names::kServeFarmFaultsTotal, stats.farm_id))
      .Increment();

  const bool reopen = h.state == BreakerState::kHalfOpen;  // Probe failed.
  const bool trip = h.state == BreakerState::kClosed &&
                    h.consecutive_failures >= config_.breaker_failure_streak;
  if (reopen || trip) {
    h.state = BreakerState::kOpen;
    // While the backend reports the connection lost, the cooldown clock is
    // meaningless — only a reconnect (OnBackendHealth kRestored) re-arms the
    // half-open probe.
    h.open_until = h.conn_lost ? Clock::time_point::max()
                               : Clock::now() + config_.breaker_cooldown;
    ++h.breaker_opens;
    ++stats.breaker_opens;
    const char* reason = transport_fault ? "connection_loss" : "fault";
    if (transport_fault) {
      ++stats.breaker_opens_conn;
    } else {
      ++stats.breaker_opens_fault;
    }
    metrics.counter(obs::names::kServeFarmBreakerOpenTotal).Increment();
    metrics
        .counter(FarmSeriesName(obs::names::kServeFarmBreakerOpenTotal, stats.farm_id))
        .Increment();
    metrics.counter(BreakerOpenSeriesName(stats.farm_id, reason)).Increment();
    APICHECKER_SLOG(Warning, "serve.farm_pool.breaker_open")
        .With("farm", stats.farm_id)
        .With("streak", h.consecutive_failures)
        .With("reason", reason)
        .With("reprobe", reopen);
    PublishHealthGaugeLocked();
  }
}

void FarmPool::OnBackendHealth(size_t farm_index, fabric::FarmBackend::Health health,
                               const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  FarmHealth& h = health_[farm_index];
  FarmStats& stats = farm_stats_[farm_index];
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  if (health == fabric::FarmBackend::Health::kLost) {
    if (!h.conn_lost) {
      h.conn_lost = true;
      ++h.breaker_opens;
      ++stats.breaker_opens;
      ++stats.breaker_opens_conn;
      metrics.counter(obs::names::kServeFarmBreakerOpenTotal).Increment();
      metrics
          .counter(
              FarmSeriesName(obs::names::kServeFarmBreakerOpenTotal, stats.farm_id))
          .Increment();
      metrics.counter(BreakerOpenSeriesName(stats.farm_id, "connection_loss"))
          .Increment();
      APICHECKER_SLOG(Warning, "serve.farm_pool.conn_lost")
          .With("farm", stats.farm_id)
          .With("reason", reason);
    }
    // Force-open: no cooldown while the link is down.
    h.state = BreakerState::kOpen;
    h.open_until = Clock::time_point::max();
    h.consecutive_failures = 0;
    PublishHealthGaugeLocked();
  } else {
    h.conn_lost = false;
    if (h.state == BreakerState::kOpen) {
      // Probe-eligible immediately: the next routed batch is the half-open
      // probe that decides whether the reconnected worker re-enters service.
      h.open_until = Clock::now();
    }
    APICHECKER_SLOG(Info, "serve.farm_pool.conn_restored")
        .With("farm", stats.farm_id)
        .With("reason", reason);
  }
}

std::vector<size_t> FarmPool::PoolBatch::AffectedIndices() const {
  if (parsed) {
    return emulated;
  }
  std::vector<size_t> all(total_items);
  for (size_t i = 0; i < total_items; ++i) {
    all[i] = i;
  }
  return all;
}

void FarmPool::ParseStage(PoolBatch& batch) {
  obs::Histogram& parse_ms = obs::MetricsRegistry::Default().histogram(
      obs::names::kIngestParseStageMs);
  batch.apks.reserve(batch.blobs.size());
  for (size_t i = 0; i < batch.blobs.size(); ++i) {
    const Clock::time_point start = Clock::now();
    auto parsed = apk::ParseApk(batch.blobs[i].bytes());
    parse_ms.Observe(
        std::chrono::duration<double, std::milli>(Clock::now() - start).count());
    if (parsed.ok()) {
      batch.apks.push_back(std::move(*parsed));
      batch.emulated.push_back(i);
    } else if (batch.on_parse_error) {
      batch.on_parse_error(i, parsed.error());
    }
  }
  batch.parsed = true;
  // The bytes are never needed again (retries reuse the parsed ApkFiles);
  // release the blob references so the pool stops pinning them.
  batch.blobs.clear();
  batch.blobs.shrink_to_fit();
}

bool FarmPool::Submit(std::vector<ingest::ApkBlob> blobs,
                      std::shared_ptr<const ModelSnapshot> snapshot,
                      uint64_t affinity, CompleteFn on_complete, RejectFn on_reject,
                      ParseErrorFn on_parse_error,
                      std::vector<obs::TraceContext> traces) {
  auto batch = std::make_unique<PoolBatch>();
  batch->blobs = std::move(blobs);
  batch->total_items = batch->blobs.size();
  batch->snapshot = std::move(snapshot);
  batch->affinity = affinity;
  batch->tried.assign(backends_.size(), 0);
  batch->on_complete = std::move(on_complete);
  batch->on_reject = std::move(on_reject);
  batch->on_parse_error = std::move(on_parse_error);
  batch->traces = std::move(traces);

  RejectFn reject_now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return false;
    }
    std::optional<size_t> target = RouteLocked(*batch);
    if (!target) {
      ++rejected_batches_;
      reject_now = std::move(batch->on_reject);
    } else {
      ++routed_;
      ++outstanding_;
      obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
      metrics.counter(obs::names::kServeFarmBatchesRoutedTotal).Increment();
      metrics
          .counter(FarmSeriesName(obs::names::kServeFarmBatchesRoutedTotal,
                                  farm_stats_[*target].farm_id))
          .Increment();
      queues_[*target].push_back(std::move(batch));
      ScheduleFarmLocked(*target);
    }
  }
  if (reject_now) {
    // The per-submission rejected_unhealthy metric is the caller's to count
    // (the pool only sees batches); we track batch-level rejects in stats().
    // Nothing parsed yet, so every index is affected.
    reject_now(PoolRejectReason::kNoHealthyFarms, batch->AffectedIndices());
    return true;
  }
  return true;
}

void FarmPool::RunFarm(size_t farm_index) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queues_[farm_index].empty()) {
      // Deactivate, then wake a Close() waiting on the drain. The next push
      // to this farm posts a fresh task.
      worker_active_[farm_index] = 0;
      lock.unlock();
      cv_.notify_all();
      return;
    }
    std::unique_ptr<PoolBatch> batch = std::move(queues_[farm_index].front());
    queues_[farm_index].pop_front();
    const size_t depth_at_entry = queues_[farm_index].size();
    in_flight_[farm_index] = 1;
    lock.unlock();
    const Clock::time_point attempt_start = Clock::now();

    // Parse stage (first attempt only): the blobs become ApkFiles here, on a
    // pool worker — never on the submitter or scheduler thread. Failover
    // retries reuse the cached parse.
    if (!batch->parsed) {
      obs::TraceSpan parse_span("serve.farm_pool.parse");
      ParseStage(*batch);
    }

    if (batch->apks.empty()) {
      // Every member failed the parse stage (each already resolved through
      // on_parse_error). Terminate the batch without consuming a farm run.
      lock.lock();
      in_flight_[farm_index] = 0;
      --outstanding_;
      const bool drained = closed_ && outstanding_ == 0;
      lock.unlock();
      batch->on_complete(emu::BatchResult{}, {});
      batch.reset();
      if (drained) {
        cv_.notify_all();
      }
      lock.lock();
      continue;
    }

    emu::BatchResult result;
    {
      obs::TraceSpan span("serve.farm_pool.batch");
      result = backends_[farm_index]->ExecuteBatch(
          batch->apks, batch->snapshot->version, batch->snapshot->checker,
          batch->snapshot->tracked);
    }

    // Per-attempt farm span, recorded BEFORE any completion callback can seal
    // the trace (and before the fault path re-queues the batch). A failed-over
    // batch therefore shows one sibling `farm` span per farm it touched, the
    // faulted attempts flagged.
    if (!batch->traces.empty()) {
      obs::TraceCollector& collector = obs::TraceCollector::Default();
      obs::StageSpan span;
      span.stage = obs::stages::kFarm;
      span.label =
          util::StrFormat("farm=%u", farm_stats_[farm_index].farm_id);
      span.start_ms = collector.ToEpochMs(attempt_start);
      span.duration_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - attempt_start)
              .count();
      span.queue_depth = depth_at_entry;
      span.fault = result.farm_fault;
      for (size_t idx : batch->emulated) {
        if (idx < batch->traces.size() && batch->traces[idx].sampled()) {
          collector.Record(batch->traces[idx].trace_id, span);
        }
      }
      // Remote attempts additionally record the wire time as a sibling span:
      // same stage (the breakdown partition is untouched), rpc-prefixed
      // label, so a trace shows how much of a farm attempt was socket + model
      // sync + remote execution vs local parse/dispatch overhead.
      const double rpc_ms = backends_[farm_index]->last_rpc_ms();
      if (rpc_ms > 0.0 && !result.farm_fault) {
        obs::StageSpan rpc_span;
        rpc_span.stage = obs::stages::kFarm;
        rpc_span.label =
            util::StrFormat("rpc farm=%u", farm_stats_[farm_index].farm_id);
        rpc_span.start_ms = span.start_ms;
        rpc_span.duration_ms = rpc_ms;
        rpc_span.queue_depth = depth_at_entry;
        for (size_t idx : batch->emulated) {
          if (idx < batch->traces.size() && batch->traces[idx].sampled()) {
            collector.Record(batch->traces[idx].trace_id, rpc_span);
          }
        }
      }
    }

    lock.lock();
    in_flight_[farm_index] = 0;

    if (!result.farm_fault) {
      RecordSuccessLocked(farm_index, result, batch->attempts > 0);
      obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
      metrics.histogram(obs::names::kServeFarmMakespanMinutes)
          .Observe(result.makespan_minutes);
      metrics
          .histogram(FarmSeriesName(obs::names::kServeFarmMakespanMinutes,
                                    farm_stats_[farm_index].farm_id))
          .Observe(result.makespan_minutes);
      --outstanding_;
      const bool drained = closed_ && outstanding_ == 0;
      lock.unlock();
      batch->on_complete(result, batch->emulated);
      batch.reset();
      if (drained) {
        cv_.notify_all();
      }
      lock.lock();
      continue;
    }

    // Farm-level fault: mark health, then fail the batch over to a farm it
    // has not tried, bounded by max_attempts; otherwise reject visibly.
    APICHECKER_SLOG(Warning, "serve.farm_pool.fault")
        .With("farm", farm_stats_[farm_index].farm_id)
        .With("transport", result.transport_fault)
        .With("reason", result.fault_reason);
    RecordFaultLocked(farm_index, result.transport_fault);
    batch->tried[farm_index] = 1;
    ++batch->attempts;

    std::optional<size_t> target;
    PoolRejectReason reason = PoolRejectReason::kRetryBudgetExhausted;
    if (batch->attempts < config_.max_attempts) {
      target = RouteLocked(*batch);
      if (!target) {
        reason = PoolRejectReason::kNoHealthyFarms;
      }
    }

    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
    if (target) {
      ++retries_;
      ++routed_;
      metrics.counter(obs::names::kServeFarmRetriesTotal).Increment();
      metrics.counter(obs::names::kServeFarmBatchesRoutedTotal).Increment();
      metrics
          .counter(FarmSeriesName(obs::names::kServeFarmBatchesRoutedTotal,
                                  farm_stats_[*target].farm_id))
          .Increment();
      queues_[*target].push_back(std::move(batch));
      // No-op when the retry lands back on this farm (this task is still
      // active and loops around to it).
      ScheduleFarmLocked(*target);
    } else {
      ++rejected_batches_;
      --outstanding_;
      const bool drained = closed_ && outstanding_ == 0;
      lock.unlock();
      batch->on_reject(reason, batch->AffectedIndices());
      batch.reset();
      if (drained) {
        cv_.notify_all();
      }
      lock.lock();
    }
  }
}

size_t FarmPool::ApproxBacklogBatches() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t backlog = 0;
  for (size_t i = 0; i < queues_.size(); ++i) {
    backlog += queues_[i].size() + static_cast<size_t>(in_flight_[i] != 0);
  }
  return backlog;
}

FarmPoolStats FarmPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  FarmPoolStats stats;
  stats.farms = farm_stats_;
  for (size_t i = 0; i < stats.farms.size(); ++i) {
    stats.farms[i].breaker = health_[i].state;
    stats.farms[i].conn_lost = health_[i].conn_lost;
  }
  stats.batches_routed = routed_;
  stats.faults = faults_;
  stats.retries = retries_;
  stats.rejected_batches = rejected_batches_;
  stats.healthy_farms = HealthyFarmsLocked();
  return stats;
}

}  // namespace apichecker::serve
