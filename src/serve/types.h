// Shared types of the online vetting service: the submission request, the
// resolved vetting result, the in-queue pending record, and the counter block
// every stage reports into. The service models the paper's production loop —
// T-Market submits ~10K APKs/day and expects verdicts back within the hour
// (§5) — as an in-process request/response system with explicit backpressure.

#ifndef APICHECKER_SERVE_TYPES_H_
#define APICHECKER_SERVE_TYPES_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "ingest/apk_blob.h"
#include "obs/labels.h"
#include "obs/trace_collector.h"

namespace apichecker::serve {

using Clock = std::chrono::steady_clock;

// Traffic classes of the market front end (§2, §5): developer resubmits and
// security escalations must stay interactive while scheduled rescans and bulk
// catalog sweeps absorb whatever capacity is left. The enum value doubles as
// the shed order — higher values are shed first, kInteractive is never shed.
enum class Priority : uint8_t {
  kInteractive = 0,  // Developer-facing: publish gates, escalations.
  kRescan = 1,       // Model-upgrade rescans of the existing catalog.
  kBulk = 2,         // Bulk sweeps / crawler backfill; first to shed.
};

inline constexpr size_t kNumPriorityClasses = 3;

inline const char* PriorityName(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kRescan:
      return "rescan";
    case Priority::kBulk:
      return "bulk";
  }
  return "unknown";
}

// Per-priority-class metric series name with an embedded Prometheus label,
// e.g. apichecker_serve_shed_total{class="bulk"}.
inline std::string ClassSeriesName(const char* base, Priority priority) {
  return obs::LabeledSeriesName(base, "class", PriorityName(priority));
}

// One vetting request: the APK archive as uploaded by a developer, held as a
// ref-counted immutable blob (streamed in and hashed incrementally by the
// ingest layer). Every downstream stage shares this one allocation.
struct Submission {
  ingest::ApkBlob blob;
  // Traffic class: routes into the class's shard sub-queue (weighted-fair
  // pop), selects the shed order under overload, and picks the default SLO
  // deadline. Undeclared traffic is bulk — the first class to degrade.
  Priority priority = Priority::kBulk;
  // Relative deadline; zero means the class SLO default (or none if that is
  // unset too). Expired submissions resolve with kDeadlineExpired instead of
  // occupying an emulator.
  std::chrono::milliseconds deadline{0};
};

enum class VetStatus : uint8_t {
  kOk = 0,               // Classified (fresh emulation or digest-cache hit).
  kDeadlineExpired = 1,  // Deadline passed before an emulator picked it up.
  kParseError = 2,       // Not a valid APK archive.
  // Every farm in the pool was faulted/circuit-broken (or the batch exhausted
  // its retry budget): the submission is rejected visibly instead of hanging.
  kRejectedUnhealthy = 3,
  // Dropped by overload control at admission: the watermark state machine was
  // in pressure/critical and the submission's class is sheddable. Resolved
  // immediately — the caller sees the drop instead of a timeout.
  kShedOverload = 4,
  // The network upload carrying this submission died before the body
  // completed (client disconnect, slow-loris eviction, length-contract
  // violation, or gateway drain). The gateway resolves it visibly so the
  // extended drain invariant (accepted == resolved + aborted) still balances.
  kAbortedUpload = 5,
};

inline const char* VetStatusName(VetStatus status) {
  switch (status) {
    case VetStatus::kOk:
      return "ok";
    case VetStatus::kDeadlineExpired:
      return "deadline_expired";
    case VetStatus::kParseError:
      return "parse_error";
    case VetStatus::kRejectedUnhealthy:
      return "rejected_unhealthy";
    case VetStatus::kShedOverload:
      return "shed_overload";
    case VetStatus::kAbortedUpload:
      return "aborted_upload";
  }
  return "unknown";
}

// The resolved outcome delivered through the future returned by Submit().
struct VettingResult {
  VetStatus status = VetStatus::kOk;
  bool malicious = false;
  double score = 0.0;
  bool from_cache = false;      // Digest cache hit — emulation was skipped.
  uint32_t model_version = 0;   // Serving-model snapshot that classified it.
  double queue_ms = 0.0;        // Admission -> batch assembly.
  double total_ms = 0.0;        // Admission -> resolution.
  std::string error;            // Parse-error message when kParseError.
};

// Internal record travelling from admission through the sharded queues to the
// batch scheduler. Move-only (owns the promise). The APK bytes and their
// digest live in the shared blob — moving this record through the queue moves
// a handle, never the payload.
struct PendingSubmission {
  uint64_t id = 0;
  ingest::ApkBlob blob;
  Priority priority = Priority::kBulk;
  Clock::time_point admitted_at;
  // Contiguous stage timestamps for latency attribution: admitted_at ->
  // enqueued_at (submit) -> popped_at (shard-queue wait) -> dispatch (batch
  // assembly/linger) -> ... Stamped by Submit() and the shard pop path.
  Clock::time_point enqueued_at;
  Clock::time_point popped_at;
  Clock::time_point deadline;     // Clock::time_point::max() = none.
  // Request-scoped trace identity, propagated by value through every stage;
  // trace.sampled() == false makes all recording no-ops.
  obs::TraceContext trace;
  std::promise<VettingResult> promise;
  // Optional completion hook, invoked after the promise is fulfilled, on
  // whichever runtime task resolved the submission. The network gateway
  // registers one so verdict delivery becomes an event instead of a thread
  // parked on future.get(). Must be cheap and non-blocking.
  std::function<void(const VettingResult&)> on_result;

  // SHA-1 hex of the blob bytes, computed once at blob creation.
  const std::string& digest() const { return blob.digest(); }
};

// Every resolution site funnels through here so the promise/callback ordering
// is uniform: future waiters are released first, then the async hook fires
// with the settled value.
inline void DeliverResult(PendingSubmission& pending, VettingResult result) {
  auto on_result = std::move(pending.on_result);
  if (on_result) {
    VettingResult settled = result;
    pending.promise.set_value(std::move(result));
    on_result(settled);
  } else {
    pending.promise.set_value(std::move(result));
  }
}

// Coarse APK size classes for the admission-latency histograms. The flat-
// admission property the ingest refactor buys is exactly "the large bucket's
// p99 tracks the small bucket's" — ci.sh asserts it from the metrics JSON.
inline const char* ApkSizeBucket(size_t bytes) {
  if (bytes < 256 * 1024) return "small";
  if (bytes < 4 * 1024 * 1024) return "medium";
  return "large";
}

// Per-size-bucket metric series name with an embedded Prometheus label, e.g.
// apichecker_serve_admission_latency_ms{size="large"}. Routed through the
// shared label builder so the value is escaped like every other series.
inline std::string AdmissionSeriesName(const char* base, const char* bucket) {
  return obs::LabeledSeriesName(base, "size", bucket);
}

// Lifecycle accounting shared by admission, scheduler, farm pool, and cache.
// The serving invariant — no lost submissions — is `accepted == resolved`
// after a drain, where resolved = completed + deadline_expired + parse_errors
// + rejected_unhealthy + shed_overload. The invariant must hold even when
// farms die mid-run and when overload control is actively shedding.
struct ServiceCounters {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};          // Admission-control rejections.
  std::atomic<uint64_t> completed{0};         // kOk results (incl. cache hits).
  std::atomic<uint64_t> deadline_expired{0};
  std::atomic<uint64_t> parse_errors{0};
  std::atomic<uint64_t> rejected_unhealthy{0};  // No healthy farm / retries spent.
  std::atomic<uint64_t> shed_overload{0};  // Dropped by the overload governor.
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> warm_start_hits{0};  // Cache hits on store-recovered entries.
  std::atomic<uint64_t> model_swaps{0};
  std::atomic<uint64_t> batches{0};
  // Per-traffic-class breakdowns, indexed by Priority. A shed submission
  // counts as accepted (it received a verdict) and as shed.
  std::array<std::atomic<uint64_t>, kNumPriorityClasses> accepted_by_class{};
  std::array<std::atomic<uint64_t>, kNumPriorityClasses> completed_by_class{};
  std::array<std::atomic<uint64_t>, kNumPriorityClasses> expired_by_class{};
  std::array<std::atomic<uint64_t>, kNumPriorityClasses> shed_by_class{};

  uint64_t resolved() const {
    return completed.load(std::memory_order_relaxed) +
           deadline_expired.load(std::memory_order_relaxed) +
           parse_errors.load(std::memory_order_relaxed) +
           rejected_unhealthy.load(std::memory_order_relaxed) +
           shed_overload.load(std::memory_order_relaxed);
  }
};

// Value copy of the counters for callers.
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t deadline_expired = 0;
  uint64_t parse_errors = 0;
  uint64_t rejected_unhealthy = 0;
  uint64_t shed_overload = 0;
  uint64_t cache_hits = 0;
  uint64_t warm_start_hits = 0;
  uint64_t model_swaps = 0;
  uint64_t batches = 0;
  std::array<uint64_t, kNumPriorityClasses> accepted_by_class{};
  std::array<uint64_t, kNumPriorityClasses> completed_by_class{};
  std::array<uint64_t, kNumPriorityClasses> expired_by_class{};
  std::array<uint64_t, kNumPriorityClasses> shed_by_class{};
  // Farm-pool accounting (mirrors FarmPoolStats aggregates).
  uint64_t farm_faults = 0;
  uint64_t farm_retries = 0;

  uint64_t resolved() const {
    return completed + deadline_expired + parse_errors + rejected_unhealthy +
           shed_overload;
  }
};

}  // namespace apichecker::serve

#endif  // APICHECKER_SERVE_TYPES_H_
