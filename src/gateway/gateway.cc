#include "gateway/gateway.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "fabric/messages.h"
#include "ingest/stream_reader.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::gateway {

namespace {

using Clock = std::chrono::steady_clock;

// Why an in-flight upload died. The reason travels on the terminal
// kAbortedUpload verdict and as the reason label on
// apichecker_gateway_uploads_aborted_total.
enum class UploadFailure : uint8_t {
  kNone = 0,
  kSlowLoris,    // Read deadline or throughput-floor eviction.
  kDisconnect,   // Peer vanished (EOF, torn frame, reset).
  kProtocol,     // Undecodable/unexpected frame (FAB1 disconnect-and-count).
  kContract,     // Declared-length vs received-length violation.
  kDrain,        // Gateway shutdown severed the upload.
};

const char* UploadFailureName(UploadFailure failure) {
  switch (failure) {
    case UploadFailure::kNone:
      return "none";
    case UploadFailure::kSlowLoris:
      return "slow_loris";
    case UploadFailure::kDisconnect:
      return "disconnect";
    case UploadFailure::kProtocol:
      return "protocol";
    case UploadFailure::kContract:
      return "length_contract";
    case UploadFailure::kDrain:
      return "drain";
  }
  return "unknown";
}

// Pulls kUploadChunk frames off the connection and presents them as a plain
// ApkStreamReader, so the existing ReadApkBlob drain — incremental SHA-1,
// spill-to-disk, ingest counters — runs unchanged while the body is still
// arriving. All hostile-client policy lives here: frame-type checks, in-order
// chunk sequencing, the declared-length contract, the read deadline, and the
// sliding-window throughput floor.
class SocketStreamReader : public ingest::ApkStreamReader {
 public:
  SocketStreamReader(fabric::Socket& socket, const GatewayConfig& config,
                     uint64_t declared_length, const std::atomic<bool>& stopping)
      : socket_(socket),
        config_(config),
        declared_(declared_length),
        stopping_(stopping),
        window_start_(Clock::now()) {}

  util::Result<size_t> Read(std::span<uint8_t> out) override {
    while (!eof_ && offset_ >= buffer_.size()) {
      auto filled = Fill();
      if (!filled.ok()) return util::Err(filled.error());
    }
    if (eof_ && offset_ >= buffer_.size()) return size_t{0};
    const size_t n = std::min(out.size(), buffer_.size() - offset_);
    std::copy_n(buffer_.begin() + static_cast<ptrdiff_t>(offset_), n, out.begin());
    offset_ += n;
    return n;
  }

  std::optional<size_t> SizeHint() const override {
    return static_cast<size_t>(declared_);
  }

  UploadFailure failure() const { return failure_; }
  uint64_t received() const { return received_; }

 private:
  util::Result<bool> Fail(UploadFailure failure, std::string message) {
    failure_ = failure;
    return util::Err(std::move(message));
  }

  // Receives exactly one frame and either appends its bytes to the buffer or
  // marks EOF (kUploadEnd). Every failure is classified.
  util::Result<bool> Fill() {
    if (stopping_.load(std::memory_order_acquire)) {
      return Fail(UploadFailure::kDrain, "gateway draining");
    }
    const Clock::time_point wait_start = Clock::now();
    auto frame = socket_.RecvFrame();
    if (!frame.ok()) {
      if (stopping_.load(std::memory_order_acquire)) {
        return Fail(UploadFailure::kDrain, "gateway draining");
      }
      if (frame.error().rfind("protocol error", 0) == 0) {
        return Fail(UploadFailure::kProtocol, frame.error());
      }
      // A recv that blocked for (almost) the whole read deadline before
      // failing is a silent client, not a crashed one: SO_RCVTIMEO expiring
      // is the only way a blocking recv takes that long.
      const auto waited = Clock::now() - wait_start;
      if (waited >= config_.read_deadline - config_.read_deadline / 10) {
        return Fail(UploadFailure::kSlowLoris,
                    util::StrFormat("read deadline (%lld ms) expired mid-body",
                                    static_cast<long long>(config_.read_deadline.count())));
      }
      return Fail(UploadFailure::kDisconnect, frame.error());
    }
    if (frame->type == fabric::MsgType::kUploadEnd) {
      auto end = fabric::DecodeUploadEnd(frame->payload);
      if (!end.ok()) return Fail(UploadFailure::kProtocol, end.error());
      if (end->sent_length != declared_ || received_ != declared_) {
        return Fail(UploadFailure::kContract,
                    util::StrFormat("length contract: declared %llu, client says %llu, "
                                    "received %llu",
                                    static_cast<unsigned long long>(declared_),
                                    static_cast<unsigned long long>(end->sent_length),
                                    static_cast<unsigned long long>(received_)));
      }
      eof_ = true;
      return true;
    }
    if (frame->type != fabric::MsgType::kUploadChunk) {
      return Fail(UploadFailure::kProtocol,
                  util::StrFormat("unexpected %s frame mid-upload",
                                  fabric::MsgTypeName(frame->type)));
    }
    auto chunk = fabric::DecodeUploadChunk(frame->payload);
    if (!chunk.ok()) return Fail(UploadFailure::kProtocol, chunk.error());
    if (chunk->seq != next_seq_) {
      return Fail(UploadFailure::kContract,
                  util::StrFormat("chunk seq %u, expected %u", chunk->seq, next_seq_));
    }
    ++next_seq_;
    received_ += chunk->bytes.size();
    if (received_ > declared_) {
      return Fail(UploadFailure::kContract,
                  util::StrFormat("body exceeds declared length (%llu > %llu)",
                                  static_cast<unsigned long long>(received_),
                                  static_cast<unsigned long long>(declared_)));
    }
    obs::MetricsRegistry::Default()
        .counter(obs::names::kGatewayBytesReceivedTotal)
        .Increment(chunk->bytes.size());
    // Throughput floor over a sliding window: a slow-loris that trickles one
    // tiny chunk per deadline never trips the recv timeout, so sustained
    // bytes/sec is the signal that actually catches it.
    if (config_.min_bytes_per_sec > 0.0) {
      window_bytes_ += chunk->bytes.size();
      const auto elapsed = Clock::now() - window_start_;
      if (elapsed >= config_.throughput_window) {
        const double secs = std::chrono::duration<double>(elapsed).count();
        const double rate = static_cast<double>(window_bytes_) / secs;
        if (rate < config_.min_bytes_per_sec) {
          return Fail(UploadFailure::kSlowLoris,
                      util::StrFormat("throughput %.0f B/s below floor %.0f B/s",
                                      rate, config_.min_bytes_per_sec));
        }
        window_start_ = Clock::now();
        window_bytes_ = 0;
      }
    }
    buffer_ = std::move(chunk->bytes);
    offset_ = 0;
    return true;
  }

  fabric::Socket& socket_;
  const GatewayConfig& config_;
  const uint64_t declared_;
  const std::atomic<bool>& stopping_;

  std::vector<uint8_t> buffer_;
  size_t offset_ = 0;
  bool eof_ = false;
  uint32_t next_seq_ = 1;
  uint64_t received_ = 0;
  UploadFailure failure_ = UploadFailure::kNone;

  Clock::time_point window_start_;
  uint64_t window_bytes_ = 0;
};

fabric::UploadVerdictMsg ToWire(const serve::VettingResult& result) {
  fabric::UploadVerdictMsg msg;
  msg.status = static_cast<uint8_t>(result.status);
  msg.malicious = result.malicious;
  msg.from_cache = result.from_cache;
  msg.score = result.score;
  msg.model_version = result.model_version;
  msg.error = result.error;
  return msg;
}

}  // namespace

IngestGateway::IngestGateway(serve::VettingService& service, GatewayConfig config)
    : service_(service), config_(std::move(config)) {
  // Uploads still on the wire are pipeline backlog the shard queues cannot
  // see; feed them into the overload governor's depth input.
  service_.SetIngressBacklogProbe([this] { return ActiveUploads(); });
}

IngestGateway::~IngestGateway() { Stop(); }

util::Result<fabric::Endpoint> IngestGateway::Start() {
  auto endpoint = fabric::ParseEndpoint(config_.endpoint);
  if (!endpoint.ok()) return util::Err(endpoint.error());
  auto listener = fabric::Listener::Bind(*endpoint);
  if (!listener.ok()) return util::Err(listener.error());
  listener_ = std::move(*listener);
  bound_endpoint_ = listener_.bound_endpoint();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return bound_endpoint_;
}

void IngestGateway::Stop() {
  if (stopped_once_.exchange(true, std::memory_order_acq_rel)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();  // No new connections; unblocks the accept thread.
  // Drain grace: in-flight uploads (and verdict waits) get a bounded chance
  // to finish on their own.
  const Clock::time_point sever_at = Clock::now() + config_.drain_grace;
  for (;;) {
    bool any_live = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      ReapLocked();
      any_live = !conns_.empty();
    }
    if (!any_live || Clock::now() >= sever_at) break;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  // Stragglers are severed: their readers fail, classify the death as
  // kDrain, and the upload resolves visibly as aborted — never silently.
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.ShutdownBoth();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stopped_ = true;
  }
  wait_cv_.notify_all();
}

void IngestGateway::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [this] { return stopped_; });
}

void IngestGateway::ReapLocked() {
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& conn) {
    if (conn->done.load(std::memory_order_acquire) && conn->thread.joinable()) {
      conn->thread.join();
      return true;
    }
    return false;
  });
}

void IngestGateway::AcceptLoop() {
  while (!stopping_.load() && listener_.valid()) {
    auto socket = listener_.Accept();
    if (!socket.ok()) {
      if (stopping_.load() || !listener_.valid()) return;
      // Transient accept failure (e.g. EMFILE); keep serving.
      continue;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Default()
        .counter(obs::names::kGatewayConnectionsTotal)
        .Increment();
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapLocked();
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->socket = std::move(*socket);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      ServeConnection(raw);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void IngestGateway::AbortUpload(fabric::Socket& socket, const char* reason) {
  aborted_.fetch_add(1, std::memory_order_relaxed);
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kGatewayUploadsAbortedTotal).Increment();
  registry
      .counter(obs::LabeledSeriesName(obs::names::kGatewayUploadsAbortedTotal,
                                      "reason", reason))
      .Increment();
  // Visible abort: best-effort terminal verdict so a still-listening client
  // learns the upload died instead of timing out. A dead peer just fails the
  // send, which is fine — the abort is already counted.
  fabric::UploadVerdictMsg verdict;
  verdict.status = static_cast<uint8_t>(serve::VetStatus::kAbortedUpload);
  verdict.error = reason;
  (void)socket.SendFrame(fabric::MsgType::kUploadVerdict,
                         fabric::EncodeUploadVerdict(verdict));
}

void IngestGateway::ServeConnection(Connection* conn) {
  fabric::Socket& socket = conn->socket;
  auto& registry = obs::MetricsRegistry::Default();
  socket.SetRecvTimeout(config_.idle_timeout);
  socket.SetSendTimeout(config_.read_deadline);

  // An upload connection leads with UploadOpen; anything else (including a
  // frame that fails the FAB1 CRC codec) disconnects without admitting an
  // upload — the accepted/completed/aborted ledger only covers valid opens.
  auto open_frame = socket.RecvFrame();
  if (!open_frame.ok()) return;  // RecvFrame already counted protocol errors.
  if (open_frame->type != fabric::MsgType::kUploadOpen) {
    (void)socket.SendFrame(
        fabric::MsgType::kError,
        fabric::EncodeError({util::StrFormat("expected upload_open, got %s",
                                             fabric::MsgTypeName(open_frame->type))}));
    return;
  }
  auto open = fabric::DecodeUploadOpen(open_frame->payload);
  if (!open.ok()) {
    (void)socket.SendFrame(fabric::MsgType::kError,
                           fabric::EncodeError({open.error()}));
    return;
  }

  accepted_.fetch_add(1, std::memory_order_relaxed);
  registry.counter(obs::names::kGatewayUploadsAcceptedTotal).Increment();

  // The open's fields are hostile input: range-check before use.
  if (open->priority >= serve::kNumPriorityClasses) {
    AbortUpload(socket, "protocol");
    return;
  }
  if (open->declared_length > config_.max_declared_bytes) {
    AbortUpload(socket, "declared_too_large");
    return;
  }
  const auto priority = static_cast<serve::Priority>(open->priority);

  auto send_early_verdict = [&](const fabric::UploadVerdictMsg& verdict) {
    fabric::UploadAck ack;
    ack.decision = fabric::UploadDecision::kVerdict;
    ack.verdict = verdict;
    completed_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayUploadsCompletedTotal).Increment();
    early_verdicts_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayEarlyVerdictsTotal).Increment();
    auto sent = socket.SendFrame(fabric::MsgType::kUploadAck,
                                 fabric::EncodeUploadAck(ack));
    if (sent.ok()) {
      verdicts_sent_.fetch_add(1, std::memory_order_relaxed);
      registry.counter(obs::names::kGatewayVerdictsSentTotal).Increment();
    } else {
      verdict_send_failures_.fetch_add(1, std::memory_order_relaxed);
      registry.counter(obs::names::kGatewayVerdictSendFailuresTotal).Increment();
    }
  };

  // Early admission 1 — digest fastpath: a declared digest the cache already
  // holds for the live model resolves right here, before (instead of) the
  // body transfer. This is also the resume path: a client whose first
  // attempt's verdict got lost retries with the digest and never re-sends
  // the bytes.
  if (!open->digest_hint.empty()) {
    if (auto cached = service_.PeekCachedVerdict(open->digest_hint)) {
      resumed_by_digest_.fetch_add(1, std::memory_order_relaxed);
      registry.counter(obs::names::kGatewayResumedByDigestTotal).Increment();
      fabric::UploadVerdictMsg verdict;
      verdict.status = static_cast<uint8_t>(serve::VetStatus::kOk);
      verdict.malicious = cached->malicious;
      verdict.from_cache = true;
      verdict.score = cached->score;
      verdict.model_version = cached->model_version;
      send_early_verdict(verdict);
      return;
    }
  }

  // Early admission 2 — shed before the body: the upload budget and the
  // overload governor both answer at open time, so a refused client costs
  // the gateway an ack frame instead of a multi-MB transfer.
  const bool over_budget =
      active_uploads_.load(std::memory_order_relaxed) >= config_.max_concurrent_uploads;
  if (over_budget || service_.WouldShed(priority)) {
    fabric::UploadVerdictMsg verdict;
    verdict.status = static_cast<uint8_t>(serve::VetStatus::kShedOverload);
    verdict.error = over_budget ? "upload budget exhausted" : "overload shed";
    send_early_verdict(verdict);
    return;
  }

  fabric::UploadAck go;
  go.decision = fabric::UploadDecision::kGo;
  go.max_chunk_bytes = config_.chunk_bytes;
  if (auto sent = socket.SendFrame(fabric::MsgType::kUploadAck,
                                   fabric::EncodeUploadAck(go));
      !sent.ok()) {
    AbortUpload(socket, "disconnect");
    return;
  }

  // Body transfer. The reader feeds ReadApkBlob, so hashing and spill-to-disk
  // run concurrently with the network transfer — the blob's digest is ready
  // the moment the last chunk lands.
  active_uploads_.fetch_add(1, std::memory_order_relaxed);
  registry.gauge(obs::names::kGatewayActiveUploads)
      .Set(static_cast<double>(active_uploads_.load(std::memory_order_relaxed)));
  socket.SetRecvTimeout(config_.read_deadline);
  SocketStreamReader reader(socket, config_, open->declared_length, stopping_);
  const Clock::time_point body_start = Clock::now();
  auto blob = ingest::ReadApkBlob(reader, config_.chunk_bytes);
  const double body_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - body_start).count();
  registry.histogram(obs::names::kGatewayUploadStageMs).Observe(body_ms);
  bytes_received_.fetch_add(reader.received(), std::memory_order_relaxed);
  active_uploads_.fetch_sub(1, std::memory_order_relaxed);
  registry.gauge(obs::names::kGatewayActiveUploads)
      .Set(static_cast<double>(active_uploads_.load(std::memory_order_relaxed)));

  if (!blob.ok()) {
    const UploadFailure failure = reader.failure();
    if (failure == UploadFailure::kSlowLoris) {
      slow_loris_disconnects_.fetch_add(1, std::memory_order_relaxed);
      registry.counter(obs::names::kGatewaySlowLorisDisconnectsTotal).Increment();
    }
    AbortUpload(socket, UploadFailureName(failure));
    return;
  }

  serve::Submission submission;
  submission.blob = std::move(*blob);
  submission.priority = priority;
  auto future = service_.Submit(std::move(submission));
  if (!future.ok()) {
    // Admission backpressure (shard queues full) or service shutdown. The
    // upload itself arrived intact; the refusal is visible as an abort with
    // the backpressure reason so the client backs off and retries by digest.
    AbortUpload(socket, "backpressure");
    return;
  }
  const serve::VettingResult result = future->get();
  completed_.fetch_add(1, std::memory_order_relaxed);
  registry.counter(obs::names::kGatewayUploadsCompletedTotal).Increment();
  auto sent = socket.SendFrame(fabric::MsgType::kUploadVerdict,
                               fabric::EncodeUploadVerdict(ToWire(result)));
  if (sent.ok()) {
    verdicts_sent_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayVerdictsSentTotal).Increment();
  } else {
    // The verdict is already durable service-side; a client that missed it
    // retries by digest and resolves from the cache without re-transfer.
    verdict_send_failures_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayVerdictSendFailuresTotal).Increment();
  }
}

GatewayStats IngestGateway::stats() const {
  GatewayStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.aborted = aborted_.load(std::memory_order_relaxed);
  stats.early_verdicts = early_verdicts_.load(std::memory_order_relaxed);
  stats.resumed_by_digest = resumed_by_digest_.load(std::memory_order_relaxed);
  stats.slow_loris_disconnects =
      slow_loris_disconnects_.load(std::memory_order_relaxed);
  stats.verdicts_sent = verdicts_sent_.load(std::memory_order_relaxed);
  stats.verdict_send_failures =
      verdict_send_failures_.load(std::memory_order_relaxed);
  stats.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace apichecker::gateway
