#include "gateway/gateway.h"

#include <array>
#include <utility>

#include "fabric/messages.h"
#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::gateway {

namespace {

using Clock = std::chrono::steady_clock;

// Per readiness event, stop draining a connection after this many bytes and
// re-arm: level-triggered epoll refires immediately if more is buffered, and
// the yield keeps one fat upload from monopolizing a reader pass.
constexpr size_t kMaxReadPerEvent = 4u << 20;

fabric::UploadVerdictMsg ToWire(const serve::VettingResult& result) {
  fabric::UploadVerdictMsg msg;
  msg.status = static_cast<uint8_t>(result.status);
  msg.malicious = result.malicious;
  msg.from_cache = result.from_cache;
  msg.score = result.score;
  msg.model_version = result.model_version;
  msg.error = result.error;
  return msg;
}

}  // namespace

IngestGateway::IngestGateway(serve::VettingService& service, GatewayConfig config)
    : service_(service), config_(std::move(config)), rt_(service.runtime()) {
  // Uploads still on the wire are pipeline backlog the shard queues cannot
  // see; feed them into the overload governor's depth input.
  service_.SetIngressBacklogProbe([this] { return ActiveUploads(); });
  // The gateway's state machines live on the service runtime, so the gateway
  // must quiesce before any deeper layer: Shutdown() calls this hook first.
  service_.RegisterFrontDoor([this] { Stop(); });
}

IngestGateway::~IngestGateway() {
  Stop();
  service_.RegisterFrontDoor(nullptr);
  service_.SetIngressBacklogProbe(nullptr);
}

util::Result<fabric::Endpoint> IngestGateway::Start() {
  auto endpoint = fabric::ParseEndpoint(config_.endpoint);
  if (!endpoint.ok()) return util::Err(endpoint.error());
  auto listener = fabric::Listener::Bind(*endpoint);
  if (!listener.ok()) return util::Err(listener.error());
  listener_ = std::move(*listener);
  bound_endpoint_ = listener_.bound_endpoint();
  ArmAccept();
  return bound_endpoint_;
}

void IngestGateway::Stop() {
  if (stopped_once_.exchange(true, std::memory_order_acq_rel)) {
    // Late or concurrent caller: block until the first teardown completes.
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    accept_closed_ = true;
    if (accept_watch_.Cancel()) --inflight_;
  }
  listener_.Close();  // No new connections.
  // Drain grace: in-flight uploads (and verdict waits) get a bounded chance
  // to finish on their own; their state machines keep running underneath.
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait_for(lock, config_.drain_grace, [this] { return conns_.empty(); });
  }
  // Stragglers are severed: their read watches wake, classify the death as
  // drain, and the upload resolves visibly as aborted — never silently.
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.ShutdownBoth();
  }
  // Wait out every connection AND every posted-but-unfinished gateway task:
  // the gateway shares the service runtime (it cannot drain it), so stale
  // strand/timer tasks capturing `this` must retire before Stop() returns.
  // Verdict waits resolve here too — the service stays up until we return.
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    conns_cv_.wait(lock, [this] { return conns_.empty() && inflight_ == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stopped_ = true;
  }
  wait_cv_.notify_all();
}

void IngestGateway::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [this] { return stopped_; });
}

void IngestGateway::IncInflight() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  ++inflight_;
}

void IngestGateway::DecInflight() {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    --inflight_;
  }
  conns_cv_.notify_all();
}

void IngestGateway::ArmAccept() {
  // Arming and Stop()'s cancel are serialized on conns_mu_ so a watch can
  // never be registered on a listener that is about to close underneath it.
  std::lock_guard<std::mutex> lock(conns_mu_);
  if (accept_closed_) return;
  ++inflight_;
  accept_watch_ = rt_.PostFd(listener_.fd(), [this] {
    OnAcceptReady();
    DecInflight();
  });
  if (!accept_watch_.valid()) --inflight_;
}

void IngestGateway::OnAcceptReady() {
  for (;;) {
    auto accepted = listener_.TryAccept();
    if (!accepted.ok()) return;  // Listener closed or broken; Stop() owns teardown.
    if (!accepted->has_value()) break;
    // Thread-count evidence for the O(cores) claim: sample at every accept so
    // the peak gauge reflects the process at its most loaded.
    rt::NoteProcessThreadsPeak();
    connections_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Default()
        .counter(obs::names::kGatewayConnectionsTotal)
        .Increment();
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(**accepted);
    conn->socket.SetSendTimeout(config_.read_deadline);
    conn->strand = rt_.MakeStrand();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (accept_closed_) return;  // Raced Stop(); the socket just closes.
      conns_.push_back(conn);
    }
    // First arming happens on the strand so every touch of the conn's watch
    // and timer tokens — including a cancel from an immediately-firing read —
    // is serialized.
    IncInflight();
    conn->strand->Post([this, conn] {
      ArmDeadline(conn, config_.idle_timeout);
      ArmRead(conn);
      DecInflight();
    });
  }
  ArmAccept();
}

void IngestGateway::ArmRead(const std::shared_ptr<Conn>& conn) {
  IncInflight();
  conn->read_watch = rt_.PostFd(conn->socket.fd(), [this, conn] {
    conn->strand->Post([this, conn] {
      OnReadable(conn);
      DecInflight();
    });
  });
  // An invalid token means the runtime is stopping; by the lifetime contract
  // that only happens after Stop() completed, so just release the slot.
  if (!conn->read_watch.valid()) DecInflight();
}

void IngestGateway::ArmDeadline(const std::shared_ptr<Conn>& conn,
                                std::chrono::milliseconds delay) {
  CancelDeadline(conn);
  const uint64_t gen = conn->deadline_gen;
  IncInflight();
  conn->deadline_timer = rt_.PostAfter(delay, [this, conn, gen] {
    conn->strand->Post([this, conn, gen] {
      OnDeadline(conn, gen);
      DecInflight();
    });
  });
  if (!conn->deadline_timer.valid()) DecInflight();
}

void IngestGateway::CancelDeadline(const std::shared_ptr<Conn>& conn) {
  // Bump the generation first: a timer that already fired (Cancel() lost the
  // race) reaches OnDeadline with a stale gen and ignores itself.
  ++conn->deadline_gen;
  if (conn->deadline_timer.Cancel()) DecInflight();
}

void IngestGateway::OnReadable(const std::shared_ptr<Conn>& conn) {
  // While parked on a verdict the gateway no longer reads: extra frames (or
  // an early peer close) are ignored — the verdict path owns the connection.
  if (conn->state == ConnState::kDone || conn->state == ConnState::kAwaitVerdict) {
    return;
  }
  std::array<uint8_t, 64 * 1024> buf;
  bool dead = false;
  bool progress = false;
  size_t drained = 0;
  while (drained < kMaxReadPerEvent) {
    auto got = conn->socket.ReadSome(buf);
    if (got.status == fabric::Socket::ReadStatus::kData) {
      conn->assembler.Feed(std::span<const uint8_t>(buf.data(), got.bytes));
      drained += got.bytes;
      progress = true;
      continue;
    }
    if (got.status == fabric::Socket::ReadStatus::kWouldBlock) break;
    dead = true;  // EOF or transport error — classify after the buffered frames.
    break;
  }
  for (;;) {
    if (conn->state == ConnState::kDone || conn->state == ConnState::kAwaitVerdict) {
      return;  // A frame handler finished or parked the connection.
    }
    auto next = conn->assembler.Pull();
    if (next.status == fabric::DecodeStatus::kTruncated) break;
    if (next.status != fabric::DecodeStatus::kOk) {
      // FAB1 disconnect-and-count (the assembler already counted it). Before
      // admission that is a silent disconnect; mid-body it aborts visibly.
      if (conn->state == ConnState::kStreaming) {
        AbortUpload(conn, "protocol");
      } else {
        FinishConn(conn);
      }
      return;
    }
    if (!HandleFrame(conn, next.frame)) return;
  }
  if (dead) {
    if (conn->state == ConnState::kStreaming) {
      // A severed straggler during Stop() is a drain, not a client fault.
      AbortUpload(conn,
                  stopping_.load(std::memory_order_acquire) ? "drain" : "disconnect");
    } else {
      // Pre-admission close: nothing entered the upload ledger.
      FinishConn(conn);
    }
    return;
  }
  if (progress) {
    // Any wire progress resets the silence clock — the event-driven mirror of
    // the per-recv SO_RCVTIMEO reset in the thread-per-upload gateway.
    ArmDeadline(conn, conn->state == ConnState::kStreaming ? config_.read_deadline
                                                           : config_.idle_timeout);
  }
  ArmRead(conn);
}

void IngestGateway::OnDeadline(const std::shared_ptr<Conn>& conn, uint64_t generation) {
  if (generation != conn->deadline_gen) return;  // Superseded or cancelled late.
  if (conn->state == ConnState::kAwaitOpen) {
    // Idle connection that never opened an upload: close silently — the
    // accepted/completed/aborted ledger only covers valid opens.
    FinishConn(conn);
    return;
  }
  if (conn->state != ConnState::kStreaming) return;
  // Total silence for a full read deadline mid-body: slow-loris eviction.
  slow_loris_disconnects_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry::Default()
      .counter(obs::names::kGatewaySlowLorisDisconnectsTotal)
      .Increment();
  AbortUpload(conn, "slow_loris");
}

bool IngestGateway::HandleFrame(const std::shared_ptr<Conn>& conn,
                                const fabric::Frame& frame) {
  switch (conn->state) {
    case ConnState::kAwaitOpen:
      return HandleOpen(conn, frame);
    case ConnState::kStreaming:
      return HandleStreamFrame(conn, frame);
    default:
      return false;
  }
}

bool IngestGateway::HandleOpen(const std::shared_ptr<Conn>& conn,
                               const fabric::Frame& frame) {
  auto& registry = obs::MetricsRegistry::Default();
  // An upload connection leads with UploadOpen; anything else disconnects
  // without admitting an upload.
  if (frame.type != fabric::MsgType::kUploadOpen) {
    (void)conn->socket.SendFrame(
        fabric::MsgType::kError,
        fabric::EncodeError({util::StrFormat("expected upload_open, got %s",
                                             fabric::MsgTypeName(frame.type))}));
    FinishConn(conn);
    return false;
  }
  auto open = fabric::DecodeUploadOpen(frame.payload);
  if (!open.ok()) {
    (void)conn->socket.SendFrame(fabric::MsgType::kError,
                                 fabric::EncodeError({open.error()}));
    FinishConn(conn);
    return false;
  }

  accepted_.fetch_add(1, std::memory_order_relaxed);
  registry.counter(obs::names::kGatewayUploadsAcceptedTotal).Increment();

  // The open's fields are hostile input: range-check before use.
  if (open->priority >= serve::kNumPriorityClasses) {
    AbortUpload(conn, "protocol");
    return false;
  }
  if (open->declared_length > config_.max_declared_bytes) {
    AbortUpload(conn, "declared_too_large");
    return false;
  }
  conn->priority = static_cast<serve::Priority>(open->priority);
  conn->declared = open->declared_length;

  // Early admission 1 — digest fastpath: a declared digest the cache already
  // holds for the live model resolves right here, before (instead of) the
  // body transfer. This is also the resume path: a client whose first
  // attempt's verdict got lost retries with the digest and never re-sends
  // the bytes.
  if (!open->digest_hint.empty()) {
    if (auto cached = service_.PeekCachedVerdict(open->digest_hint)) {
      resumed_by_digest_.fetch_add(1, std::memory_order_relaxed);
      registry.counter(obs::names::kGatewayResumedByDigestTotal).Increment();
      fabric::UploadVerdictMsg verdict;
      verdict.status = static_cast<uint8_t>(serve::VetStatus::kOk);
      verdict.malicious = cached->malicious;
      verdict.from_cache = true;
      verdict.score = cached->score;
      verdict.model_version = cached->model_version;
      SendEarlyVerdict(conn, verdict);
      return false;
    }
  }

  // Early admission 2 — shed before the body: the upload budget and the
  // overload governor both answer at open time, so a refused client costs
  // the gateway an ack frame instead of a multi-MB transfer.
  const bool over_budget =
      active_uploads_.load(std::memory_order_relaxed) >= config_.max_concurrent_uploads;
  if (over_budget || service_.WouldShed(conn->priority)) {
    fabric::UploadVerdictMsg verdict;
    verdict.status = static_cast<uint8_t>(serve::VetStatus::kShedOverload);
    verdict.error = over_budget ? "upload budget exhausted" : "overload shed";
    SendEarlyVerdict(conn, verdict);
    return false;
  }

  fabric::UploadAck go;
  go.decision = fabric::UploadDecision::kGo;
  go.max_chunk_bytes = config_.chunk_bytes;
  if (auto sent = conn->socket.SendFrame(fabric::MsgType::kUploadAck,
                                         fabric::EncodeUploadAck(go));
      !sent.ok()) {
    AbortUpload(conn, "disconnect");
    return false;
  }

  // Body phase: chunks feed a BlobAssembler, so incremental SHA-1 and the
  // spill policy overlap the transfer — the digest is ready the moment the
  // last chunk lands.
  conn->state = ConnState::kStreaming;
  conn->counted_active = true;
  const size_t active = active_uploads_.fetch_add(1, std::memory_order_relaxed) + 1;
  registry.gauge(obs::names::kGatewayActiveUploads).Set(static_cast<double>(active));
  conn->body = std::make_unique<ingest::BlobAssembler>(
      static_cast<size_t>(conn->declared));
  conn->body_start = Clock::now();
  conn->window_start = conn->body_start;
  conn->window_bytes = 0;
  return true;
}

bool IngestGateway::HandleStreamFrame(const std::shared_ptr<Conn>& conn,
                                      const fabric::Frame& frame) {
  auto& registry = obs::MetricsRegistry::Default();
  if (frame.type == fabric::MsgType::kUploadEnd) {
    auto end = fabric::DecodeUploadEnd(frame.payload);
    if (!end.ok()) {
      AbortUpload(conn, "protocol");
      return false;
    }
    // Declared-length contract: the open's declaration, the client's claimed
    // total, and the bytes that actually arrived must all agree.
    if (end->sent_length != conn->declared || conn->received != conn->declared) {
      AbortUpload(conn, "length_contract");
      return false;
    }
    EndBody(conn);
    auto blob = conn->body->Finish();
    conn->body.reset();
    conn->state = ConnState::kAwaitVerdict;
    CancelDeadline(conn);
    serve::Submission submission;
    submission.blob = std::move(blob);
    submission.priority = conn->priority;
    // Park on the verdict without parking a thread: the service's completion
    // hook posts back to this connection's strand.
    IncInflight();
    auto future = service_.SubmitWithCallback(
        std::move(submission), [this, conn](const serve::VettingResult& result) {
          serve::VettingResult copy = result;
          conn->strand->Post([this, conn, copy = std::move(copy)] {
            OnVerdict(conn, copy);
            DecInflight();
          });
        });
    if (!future.ok()) {
      // Admission backpressure (shard queues full) or service shutdown. The
      // upload itself arrived intact; the refusal is visible as an abort with
      // the backpressure reason so the client backs off and retries by digest.
      DecInflight();  // The hook is never invoked on admission errors.
      AbortUpload(conn, "backpressure");
    }
    return false;  // Parked (or aborted); either way, stop reading.
  }
  if (frame.type != fabric::MsgType::kUploadChunk) {
    AbortUpload(conn, "protocol");
    return false;
  }
  auto chunk = fabric::DecodeUploadChunk(frame.payload);
  if (!chunk.ok()) {
    AbortUpload(conn, "protocol");
    return false;
  }
  if (chunk->seq != conn->next_seq) {
    AbortUpload(conn, "length_contract");
    return false;
  }
  ++conn->next_seq;
  conn->received += chunk->bytes.size();
  if (conn->received > conn->declared) {
    AbortUpload(conn, "length_contract");
    return false;
  }
  registry.counter(obs::names::kGatewayBytesReceivedTotal)
      .Increment(chunk->bytes.size());
  // Throughput floor over a sliding window: a slow-loris that trickles one
  // tiny chunk per deadline never goes fully silent, so sustained bytes/sec
  // is the signal that actually catches it.
  if (config_.min_bytes_per_sec > 0.0) {
    conn->window_bytes += chunk->bytes.size();
    const auto elapsed = Clock::now() - conn->window_start;
    if (elapsed >= config_.throughput_window) {
      const double secs = std::chrono::duration<double>(elapsed).count();
      const double rate = static_cast<double>(conn->window_bytes) / secs;
      if (rate < config_.min_bytes_per_sec) {
        slow_loris_disconnects_.fetch_add(1, std::memory_order_relaxed);
        registry.counter(obs::names::kGatewaySlowLorisDisconnectsTotal).Increment();
        AbortUpload(conn, "slow_loris");
        return false;
      }
      conn->window_start = Clock::now();
      conn->window_bytes = 0;
    }
  }
  conn->body->Append(chunk->bytes);
  return true;
}

void IngestGateway::OnVerdict(const std::shared_ptr<Conn>& conn,
                              const serve::VettingResult& result) {
  if (conn->state != ConnState::kAwaitVerdict) return;
  auto& registry = obs::MetricsRegistry::Default();
  completed_.fetch_add(1, std::memory_order_relaxed);
  registry.counter(obs::names::kGatewayUploadsCompletedTotal).Increment();
  auto sent = conn->socket.SendFrame(fabric::MsgType::kUploadVerdict,
                                     fabric::EncodeUploadVerdict(ToWire(result)));
  if (sent.ok()) {
    verdicts_sent_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayVerdictsSentTotal).Increment();
  } else {
    // The verdict is already durable service-side; a client that missed it
    // retries by digest and resolves from the cache without re-transfer.
    verdict_send_failures_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayVerdictSendFailuresTotal).Increment();
  }
  FinishConn(conn);
}

void IngestGateway::EndBody(const std::shared_ptr<Conn>& conn) {
  if (!conn->counted_active) return;
  conn->counted_active = false;
  auto& registry = obs::MetricsRegistry::Default();
  const double body_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - conn->body_start)
          .count();
  registry.histogram(obs::names::kGatewayUploadStageMs).Observe(body_ms);
  bytes_received_.fetch_add(conn->received, std::memory_order_relaxed);
  const size_t active = active_uploads_.fetch_sub(1, std::memory_order_relaxed) - 1;
  registry.gauge(obs::names::kGatewayActiveUploads).Set(static_cast<double>(active));
}

void IngestGateway::AbortUpload(const std::shared_ptr<Conn>& conn, const char* reason) {
  if (conn->state == ConnState::kDone) return;
  EndBody(conn);
  conn->body.reset();
  aborted_.fetch_add(1, std::memory_order_relaxed);
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kGatewayUploadsAbortedTotal).Increment();
  registry
      .counter(obs::LabeledSeriesName(obs::names::kGatewayUploadsAbortedTotal,
                                      "reason", reason))
      .Increment();
  // Visible abort: best-effort terminal verdict so a still-listening client
  // learns the upload died instead of timing out. A dead peer just fails the
  // send, which is fine — the abort is already counted.
  fabric::UploadVerdictMsg verdict;
  verdict.status = static_cast<uint8_t>(serve::VetStatus::kAbortedUpload);
  verdict.error = reason;
  (void)conn->socket.SendFrame(fabric::MsgType::kUploadVerdict,
                               fabric::EncodeUploadVerdict(verdict));
  FinishConn(conn);
}

void IngestGateway::SendEarlyVerdict(const std::shared_ptr<Conn>& conn,
                                     const fabric::UploadVerdictMsg& verdict) {
  auto& registry = obs::MetricsRegistry::Default();
  fabric::UploadAck ack;
  ack.decision = fabric::UploadDecision::kVerdict;
  ack.verdict = verdict;
  completed_.fetch_add(1, std::memory_order_relaxed);
  registry.counter(obs::names::kGatewayUploadsCompletedTotal).Increment();
  early_verdicts_.fetch_add(1, std::memory_order_relaxed);
  registry.counter(obs::names::kGatewayEarlyVerdictsTotal).Increment();
  auto sent = conn->socket.SendFrame(fabric::MsgType::kUploadAck,
                                     fabric::EncodeUploadAck(ack));
  if (sent.ok()) {
    verdicts_sent_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayVerdictsSentTotal).Increment();
  } else {
    verdict_send_failures_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kGatewayVerdictSendFailuresTotal).Increment();
  }
  FinishConn(conn);
}

void IngestGateway::FinishConn(const std::shared_ptr<Conn>& conn) {
  if (conn->state == ConnState::kDone) return;
  conn->state = ConnState::kDone;
  CancelDeadline(conn);
  if (conn->read_watch.Cancel()) DecInflight();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    std::erase(conns_, conn);  // The socket closes with the last reference.
  }
  conns_cv_.notify_all();
}

GatewayStats IngestGateway::stats() const {
  GatewayStats stats;
  stats.connections = connections_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.aborted = aborted_.load(std::memory_order_relaxed);
  stats.early_verdicts = early_verdicts_.load(std::memory_order_relaxed);
  stats.resumed_by_digest = resumed_by_digest_.load(std::memory_order_relaxed);
  stats.slow_loris_disconnects =
      slow_loris_disconnects_.load(std::memory_order_relaxed);
  stats.verdicts_sent = verdicts_sent_.load(std::memory_order_relaxed);
  stats.verdict_send_failures =
      verdict_send_failures_.load(std::memory_order_relaxed);
  stats.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace apichecker::gateway
