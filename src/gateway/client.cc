#include "gateway/client.h"

#include <sys/socket.h>

#include <algorithm>
#include <thread>
#include <utility>
#include <vector>

#include "fabric/transport.h"
#include "fabric/wire.h"
#include "serve/types.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/sha1.h"
#include "util/strings.h"

namespace apichecker::gateway {

namespace {

// Sends raw bytes on the socket's fd, bypassing the frame codec — the only
// way to put a deliberately torn or corrupted frame on the wire.
void SendRaw(const fabric::Socket& socket, std::span<const uint8_t> bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(socket.fd(), bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Peer already gone; the attempt is failing anyway.
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

UploadClient::UploadClient(UploadClientConfig config)
    : config_(std::move(config)),
      jitter_rng_(util::SplitMix64(config_.jitter_seed ^ 0x75706c6f6164ull)) {}

util::Result<UploadOutcome> UploadClient::Upload(std::span<const uint8_t> apk) {
  auto endpoint = fabric::ParseEndpoint(config_.endpoint);
  if (!endpoint.ok()) return util::Err(endpoint.error());
  // One hashing pass, up front: the digest rides on every attempt's open so
  // the gateway can resolve a retry from its cache without the body.
  const std::string digest = util::Sha1Hex(apk);
  const size_t chunk_bytes = std::max<size_t>(1, config_.chunk_bytes);

  auto& registry = obs::MetricsRegistry::Default();
  UploadOutcome outcome;
  // Chunk ordinals run across the whole upload, attempts included, so a
  // scripted fault fires exactly once per Upload() — the retry that follows
  // it runs clean, like IoFaultPlan's per-instance append ordinals.
  NetFaultInjector injector(config_.fault_plan);
  uint64_t ordinal = 0;
  std::string last_error = "no attempts";

  for (size_t attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    if (attempt > 1) {
      registry.counter(obs::names::kGatewayClientRetriesTotal).Increment();
      // Capped exponential backoff with jitter in [0.5, 1.0): retries from a
      // fleet of failed clients must not re-arrive in lockstep.
      std::chrono::milliseconds backoff =
          config_.backoff_base * (1ll << std::min<size_t>(attempt - 2, 20));
      backoff = std::min(backoff, config_.backoff_cap);
      const double jitter = 0.5 + 0.5 * jitter_rng_.NextDouble();
      std::this_thread::sleep_for(
          std::chrono::milliseconds{static_cast<int64_t>(
              static_cast<double>(backoff.count()) * jitter)});
    }
    outcome.attempts = attempt;

    auto socket = fabric::Socket::Connect(*endpoint, config_.connect_timeout);
    if (!socket.ok()) {
      last_error = socket.error();
      continue;
    }
    socket->SetRecvTimeout(config_.io_timeout);
    socket->SetSendTimeout(config_.io_timeout);

    fabric::UploadOpen open;
    open.declared_length = apk.size();
    open.digest_hint = digest;
    open.priority = config_.priority;
    open.client_name = config_.client_name;
    if (auto sent = socket->SendFrame(fabric::MsgType::kUploadOpen,
                                      fabric::EncodeUploadOpen(open));
        !sent.ok()) {
      last_error = sent.error();
      continue;
    }

    auto ack_frame = socket->RecvFrame();
    if (!ack_frame.ok()) {
      last_error = ack_frame.error();
      continue;
    }
    if (ack_frame->type == fabric::MsgType::kError) {
      auto err = fabric::DecodeError(ack_frame->payload);
      last_error = err.ok() ? err->message : err.error();
      continue;
    }
    if (ack_frame->type != fabric::MsgType::kUploadAck) {
      last_error = util::StrFormat("expected upload_ack, got %s",
                                   fabric::MsgTypeName(ack_frame->type));
      continue;
    }
    auto ack = fabric::DecodeUploadAck(ack_frame->payload);
    if (!ack.ok()) {
      last_error = ack.error();
      continue;
    }
    if (ack->decision == fabric::UploadDecision::kVerdict) {
      outcome.verdict = ack->verdict;
      outcome.early_verdict = true;
      outcome.resumed_by_digest = attempt > 1 && ack->verdict.from_cache;
      return outcome;
    }

    // Stream the body.
    bool attempt_failed = false;
    uint32_t seq = 0;
    for (size_t offset = 0; offset < apk.size() || (apk.empty() && seq == 0);) {
      const size_t n = std::min(chunk_bytes, apk.size() - offset);
      fabric::UploadChunk chunk;
      chunk.seq = ++seq;
      chunk.bytes.assign(apk.begin() + static_cast<ptrdiff_t>(offset),
                         apk.begin() + static_cast<ptrdiff_t>(offset + n));
      ++ordinal;

      const NetFault fault = injector.OnChunk(ordinal);
      if (fault != NetFault::kNone) {
        ++outcome.injected_faults;
        registry.counter(obs::names::kGatewayNetInjectedFaultsTotal).Increment();
      }
      if (fault == NetFault::kStall) {
        std::this_thread::sleep_for(injector.stall_duration());
      } else if (fault == NetFault::kDisconnect) {
        socket->Close();
        last_error = "injected: disconnect mid-stream";
        attempt_failed = true;
        break;
      } else if (fault == NetFault::kTornFrame) {
        const std::vector<uint8_t> frame =
            fabric::EncodeFrame(fabric::MsgType::kUploadChunk,
                                fabric::EncodeUploadChunk(chunk));
        SendRaw(*socket, std::span(frame).first(frame.size() / 2));
        socket->Close();
        last_error = "injected: torn frame";
        attempt_failed = true;
        break;
      } else if (fault == NetFault::kCorrupt) {
        std::vector<uint8_t> frame =
            fabric::EncodeFrame(fabric::MsgType::kUploadChunk,
                                fabric::EncodeUploadChunk(chunk));
        // Flip the first payload byte; the stale CRC makes the gateway
        // disconnect us through the FAB1 disconnect-and-count path.
        frame[fabric::kFrameHeaderBytes] ^= 0x40;
        SendRaw(*socket, frame);
        last_error = "injected: corrupt frame";
        attempt_failed = true;
        break;
      }

      if (auto sent = socket->SendFrame(fabric::MsgType::kUploadChunk,
                                        fabric::EncodeUploadChunk(chunk));
          !sent.ok()) {
        last_error = sent.error();
        attempt_failed = true;
        break;
      }
      outcome.bytes_sent += n;
      offset += n;
      if (apk.empty()) break;

      const auto delay = injector.ThrottleDelay(ordinal, n);
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
    }
    if (attempt_failed) continue;

    fabric::UploadEnd end;
    end.sent_length = apk.size();
    if (auto sent = socket->SendFrame(fabric::MsgType::kUploadEnd,
                                      fabric::EncodeUploadEnd(end));
        !sent.ok()) {
      last_error = sent.error();
      continue;
    }

    // Impatient client: hang up instead of collecting the verdict. The
    // gateway classifies the intact body anyway, so the next attempt's
    // digest hint resolves from the cache — resume without re-transfer.
    if (attempt <= config_.fault_plan.abandon_verdict_waits) {
      ++outcome.injected_faults;
      registry.counter(obs::names::kGatewayNetInjectedFaultsTotal).Increment();
      socket->Close();
      last_error = "injected: abandoned verdict wait";
      continue;
    }

    auto verdict_frame = socket->RecvFrame();
    if (!verdict_frame.ok()) {
      last_error = verdict_frame.error();
      continue;
    }
    if (verdict_frame->type != fabric::MsgType::kUploadVerdict) {
      last_error = util::StrFormat("expected upload_verdict, got %s",
                                   fabric::MsgTypeName(verdict_frame->type));
      continue;
    }
    auto verdict = fabric::DecodeUploadVerdict(verdict_frame->payload);
    if (!verdict.ok()) {
      last_error = verdict.error();
      continue;
    }
    // An aborted_upload verdict is the gateway saying "your transfer died,
    // not your APK" — retryable, unless this was the last attempt (then the
    // caller sees the abort it earned).
    if (verdict->status == static_cast<uint8_t>(serve::VetStatus::kAbortedUpload) &&
        attempt < config_.max_attempts) {
      last_error = "upload aborted: " + verdict->error;
      continue;
    }
    outcome.verdict = std::move(*verdict);
    return outcome;
  }
  return util::Err(util::StrFormat("upload failed after %zu attempts: %s",
                                   config_.max_attempts, last_error.c_str()));
}

}  // namespace apichecker::gateway
