// UploadClient: the submitting side of the ingest gateway protocol. Streams
// one APK as framed chunks, optionally mangled by a NetFaultPlan (the
// deterministic hostile-network harness), and retries failed attempts with
// capped exponential backoff plus seeded jitter. Every attempt declares the
// APK's digest up front, so a retry whose previous attempt already produced a
// verdict resolves from the gateway's cache without re-transferring a byte —
// resume-by-digest.

#ifndef APICHECKER_GATEWAY_CLIENT_H_
#define APICHECKER_GATEWAY_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "fabric/messages.h"
#include "gateway/net_fault.h"
#include "util/result.h"

namespace apichecker::gateway {

struct UploadClientConfig {
  std::string endpoint;  // Gateway address, "unix:/path" or "tcp:host:port".
  std::string client_name = "submit";
  std::chrono::milliseconds connect_timeout{1000};
  std::chrono::milliseconds io_timeout{5000};
  size_t chunk_bytes = 64 * 1024;
  uint8_t priority = 2;  // serve::Priority value; default bulk.
  // Retry policy: attempt N sleeps min(cap, base << (N-1)) scaled by a
  // seeded jitter factor in [0.5, 1.0) before reconnecting.
  size_t max_attempts = 4;
  std::chrono::milliseconds backoff_base{50};
  std::chrono::milliseconds backoff_cap{2000};
  uint64_t jitter_seed = 1;
  NetFaultPlan fault_plan;  // Scripted hostile-network behavior (per upload).
};

struct UploadOutcome {
  fabric::UploadVerdictMsg verdict;
  size_t attempts = 0;        // Connect attempts consumed (>= 1).
  uint64_t bytes_sent = 0;    // Body bytes across all attempts.
  bool early_verdict = false; // Resolved at open, before any body byte.
  bool resumed_by_digest = false;  // Early verdict on a retry attempt.
  uint64_t injected_faults = 0;
};

class UploadClient {
 public:
  explicit UploadClient(UploadClientConfig config);

  // Uploads one APK and returns its terminal verdict. The digest is computed
  // locally once and declared on every attempt. Errors only when every
  // attempt failed (gateway unreachable, or the fault plan killed each one).
  util::Result<UploadOutcome> Upload(std::span<const uint8_t> apk);

 private:
  UploadClientConfig config_;
  util::Rng jitter_rng_;
};

}  // namespace apichecker::gateway

#endif  // APICHECKER_GATEWAY_CLIENT_H_
