#include "gateway/net_fault.h"

#include <algorithm>
#include <cmath>

namespace apichecker::gateway {

const char* NetFaultName(NetFault fault) {
  switch (fault) {
    case NetFault::kNone:
      return "none";
    case NetFault::kStall:
      return "stall";
    case NetFault::kDisconnect:
      return "disconnect";
    case NetFault::kTornFrame:
      return "torn_frame";
    case NetFault::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

NetFaultInjector::NetFaultInjector(const NetFaultPlan& plan)
    : plan_(plan), stall_rng_(util::SplitMix64(plan.seed ^ 0x6e65746661756c74ull)) {}

NetFault NetFaultInjector::OnChunk(uint64_t chunk_ordinal) {
  auto scripted = [chunk_ordinal](const std::vector<uint64_t>& at) {
    return std::find(at.begin(), at.end(), chunk_ordinal) != at.end();
  };
  if (scripted(plan_.disconnect_after)) return NetFault::kDisconnect;
  if (scripted(plan_.torn_frame_at)) return NetFault::kTornFrame;
  if (scripted(plan_.corrupt_at)) return NetFault::kCorrupt;
  if (scripted(plan_.stall_before)) return NetFault::kStall;
  if (plan_.stall_rate > 0.0 && stall_rng_.Bernoulli(plan_.stall_rate)) {
    return NetFault::kStall;
  }
  return NetFault::kNone;
}

std::chrono::milliseconds NetFaultInjector::ThrottleDelay(uint64_t chunk_ordinal,
                                                          size_t sent_bytes) const {
  if (plan_.throttle_from == 0 || plan_.throttle_bytes_per_sec <= 0.0 ||
      chunk_ordinal < plan_.throttle_from) {
    return std::chrono::milliseconds{0};
  }
  const double ms =
      1000.0 * static_cast<double>(sent_bytes) / plan_.throttle_bytes_per_sec;
  return std::chrono::milliseconds{static_cast<int64_t>(std::llround(ms))};
}

}  // namespace apichecker::gateway
