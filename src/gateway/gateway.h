// IngestGateway: the network front door of the vetting service. Accepts
// framed APK uploads over the fabric transport (unix or TCP), streams the
// body through ingest::ReadApkBlob so incremental SHA-1 hashing and
// spill-to-disk overlap the transfer, and answers with the submission's
// verdict on the same connection.
//
// Early admission: the gateway can resolve an upload BEFORE the body finishes
// arriving — a declared digest the cache already holds for the live model is
// answered at open time with zero body bytes transferred (the retry/resume
// path), and an overload-governor shed refuses the body up front instead of
// after multi-MB of hostile goodput.
//
// Robustness is the point. Per-connection read deadlines bound every frame
// wait; a minimum-throughput floor over a sliding window evicts slow-loris
// clients that trickle bytes just fast enough to defeat the deadline; a
// declared-length vs received-length contract rejects both short and
// oversending clients; undecodable frames reuse the FAB1 CRC codec's
// disconnect-and-count semantics; the concurrent-upload budget is bounded and
// the active-upload count feeds the OverloadGovernor's depth input. On
// Stop(), in-flight uploads get a drain grace to finish; stragglers are
// severed and resolve visibly as kAbortedUpload — extending the service's
// drain invariant to the network edge:
//
//   uploads_accepted == uploads_completed + uploads_aborted
//
// where "completed" means a terminal verdict was produced (even if sending it
// failed — the client retries by digest and resolves from the cache without
// re-transfer).

#ifndef APICHECKER_GATEWAY_GATEWAY_H_
#define APICHECKER_GATEWAY_GATEWAY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fabric/transport.h"
#include "serve/service.h"
#include "util/result.h"

namespace apichecker::gateway {

struct GatewayConfig {
  std::string endpoint;  // Listen address, "unix:/path" or "tcp:host:port".
  // Longest the gateway waits for the next frame of an upload in progress. A
  // connection that goes completely silent mid-body for this long is evicted
  // as a slow-loris.
  std::chrono::milliseconds read_deadline{2000};
  // Longest a fresh connection may sit idle before its UploadOpen arrives.
  std::chrono::milliseconds idle_timeout{5000};
  // Minimum sustained body throughput (0 = off). Checked over sliding windows
  // of throughput_window: a client that keeps the connection technically
  // alive but trickles below the floor is evicted as a slow-loris.
  double min_bytes_per_sec = 0.0;
  std::chrono::milliseconds throughput_window{1000};
  // Hard ceiling on a declared body length; anything larger is refused at
  // open (the length field is hostile input).
  uint64_t max_declared_bytes = 64ull << 20;
  // Concurrent-upload budget: connections beyond this are refused at open
  // with a shed verdict rather than queued invisibly.
  size_t max_concurrent_uploads = 64;
  // Advertised per-chunk ceiling, and the granularity the body is re-chunked
  // at through ReadApkBlob (hash + spill overlap the transfer).
  size_t chunk_bytes = 64 * 1024;
  // How long Stop() lets in-flight uploads finish before severing them.
  std::chrono::milliseconds drain_grace{2000};
};

// Lifetime upload accounting; the extended drain invariant is checked over
// these (see GatewayStats::Balanced).
struct GatewayStats {
  uint64_t connections = 0;
  uint64_t accepted = 0;   // Valid UploadOpen frames admitted.
  uint64_t completed = 0;  // Terminal verdict produced (incl. early verdicts).
  uint64_t aborted = 0;    // Upload died visibly before a verdict.
  uint64_t early_verdicts = 0;
  uint64_t resumed_by_digest = 0;
  uint64_t slow_loris_disconnects = 0;
  uint64_t verdicts_sent = 0;
  uint64_t verdict_send_failures = 0;
  uint64_t bytes_received = 0;

  bool Balanced() const { return accepted == completed + aborted; }
};

class IngestGateway {
 public:
  // `service` must outlive the gateway. Registers the active-upload count as
  // the service's ingress-backlog probe.
  IngestGateway(serve::VettingService& service, GatewayConfig config);
  ~IngestGateway();

  IngestGateway(const IngestGateway&) = delete;
  IngestGateway& operator=(const IngestGateway&) = delete;

  // Binds the endpoint and starts the accept thread. Returns the bound
  // endpoint (meaningful for tcp:host:0) on success.
  util::Result<fabric::Endpoint> Start();

  // Graceful drain: close the listener, give in-flight uploads drain_grace
  // to finish, sever the rest (they resolve as kAbortedUpload), join all
  // threads. Idempotent.
  void Stop();

  // Blocks until Stop() is called from another thread.
  void Wait();

  const fabric::Endpoint& bound_endpoint() const { return bound_endpoint_; }
  GatewayStats stats() const;
  size_t ActiveUploads() const {
    return active_uploads_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    fabric::Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  void ReapLocked();
  // Best-effort terminal kAbortedUpload verdict + abort accounting.
  void AbortUpload(fabric::Socket& socket, const char* reason);

  serve::VettingService& service_;
  GatewayConfig config_;

  fabric::Listener listener_;
  fabric::Endpoint bound_endpoint_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_once_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool stopped_ = false;

  std::atomic<size_t> active_uploads_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> early_verdicts_{0};
  std::atomic<uint64_t> resumed_by_digest_{0};
  std::atomic<uint64_t> slow_loris_disconnects_{0};
  std::atomic<uint64_t> verdicts_sent_{0};
  std::atomic<uint64_t> verdict_send_failures_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

}  // namespace apichecker::gateway

#endif  // APICHECKER_GATEWAY_GATEWAY_H_
