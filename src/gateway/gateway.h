// IngestGateway: the network front door of the vetting service. Accepts
// framed APK uploads over the fabric transport (unix or TCP), assembles the
// body through ingest::BlobAssembler so incremental SHA-1 hashing and
// spill-to-disk overlap the transfer, and answers with the submission's
// verdict on the same connection.
//
// Every connection is a readiness-driven state machine on the service's
// unified rt::Runtime — no thread per upload. The listener and each
// connection fd carry one-shot PostFd watches; frames are decoded by a
// streaming fabric::FrameAssembler; all per-connection state is touched only
// on the connection's strand; deadlines are TimerWheel tasks instead of
// SO_RCVTIMEO waits. Steady-state process thread count is O(runtime workers),
// not O(connections) — the property the CI smoke asserts by doubling the
// upload-client count and reading apichecker_rt_process_threads_peak.
//
//   kAwaitOpen --UploadOpen--> kStreaming --UploadEnd--> kAwaitVerdict
//       |  idle_timeout            |  chunk frames           | service
//       v  (silent close)          v  read_deadline timer,   v callback
//     done                        aborts (slow-loris,      verdict sent,
//                                 contract, protocol,       done
//                                 disconnect)
//
// Early admission: the gateway can resolve an upload BEFORE the body finishes
// arriving — a declared digest the cache already holds for the live model is
// answered at open time with zero body bytes transferred (the retry/resume
// path), and an overload-governor shed refuses the body up front instead of
// after multi-MB of hostile goodput.
//
// Robustness is the point. Per-connection read-deadline timers bound every
// frame wait; a minimum-throughput floor over a sliding window evicts
// slow-loris clients that trickle bytes just fast enough to defeat the
// deadline; a declared-length vs received-length contract rejects both short
// and oversending clients; undecodable frames reuse the FAB1 CRC codec's
// disconnect-and-count semantics; the concurrent-upload budget is bounded and
// the active-upload count feeds the OverloadGovernor's depth input. On
// Stop(), in-flight uploads get a drain grace to finish; stragglers are
// severed and resolve visibly as kAbortedUpload — extending the service's
// drain invariant to the network edge:
//
//   uploads_accepted == uploads_completed + uploads_aborted
//
// where "completed" means a terminal verdict was produced (even if sending it
// failed — the client retries by digest and resolves from the cache without
// re-transfer).
//
// Lifetime contract: the gateway runs its state machines on
// service.runtime(), so Stop() must complete while that runtime is alive.
// VettingService::Shutdown() guarantees it (the front door quiesces first);
// a gateway destroyed early deregisters its service hooks.

#ifndef APICHECKER_GATEWAY_GATEWAY_H_
#define APICHECKER_GATEWAY_GATEWAY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fabric/transport.h"
#include "ingest/stream_reader.h"
#include "rt/runtime.h"
#include "serve/service.h"
#include "util/result.h"

namespace apichecker::gateway {

struct GatewayConfig {
  std::string endpoint;  // Listen address, "unix:/path" or "tcp:host:port".
  // Longest the gateway waits for upload progress mid-body. A connection that
  // goes completely silent for this long is evicted as a slow-loris.
  std::chrono::milliseconds read_deadline{2000};
  // Longest a fresh connection may sit idle before its UploadOpen arrives.
  std::chrono::milliseconds idle_timeout{5000};
  // Minimum sustained body throughput (0 = off). Checked over sliding windows
  // of throughput_window: a client that keeps the connection technically
  // alive but trickles below the floor is evicted as a slow-loris.
  double min_bytes_per_sec = 0.0;
  std::chrono::milliseconds throughput_window{1000};
  // Hard ceiling on a declared body length; anything larger is refused at
  // open (the length field is hostile input).
  uint64_t max_declared_bytes = 64ull << 20;
  // Concurrent-upload budget: connections beyond this are refused at open
  // with a shed verdict rather than queued invisibly.
  size_t max_concurrent_uploads = 64;
  // Advertised per-chunk ceiling; also the ingest accounting granularity.
  size_t chunk_bytes = 64 * 1024;
  // How long Stop() lets in-flight uploads finish before severing them.
  std::chrono::milliseconds drain_grace{2000};
};

// Lifetime upload accounting; the extended drain invariant is checked over
// these (see GatewayStats::Balanced).
struct GatewayStats {
  uint64_t connections = 0;
  uint64_t accepted = 0;   // Valid UploadOpen frames admitted.
  uint64_t completed = 0;  // Terminal verdict produced (incl. early verdicts).
  uint64_t aborted = 0;    // Upload died visibly before a verdict.
  uint64_t early_verdicts = 0;
  uint64_t resumed_by_digest = 0;
  uint64_t slow_loris_disconnects = 0;
  uint64_t verdicts_sent = 0;
  uint64_t verdict_send_failures = 0;
  uint64_t bytes_received = 0;

  bool Balanced() const { return accepted == completed + aborted; }
};

class IngestGateway {
 public:
  // `service` must outlive the gateway. Registers the active-upload count as
  // the service's ingress-backlog probe and itself as the service's front
  // door (VettingService::Shutdown stops the gateway first).
  IngestGateway(serve::VettingService& service, GatewayConfig config);
  ~IngestGateway();

  IngestGateway(const IngestGateway&) = delete;
  IngestGateway& operator=(const IngestGateway&) = delete;

  // Binds the endpoint and arms the accept watch on the service runtime.
  // Returns the bound endpoint (meaningful for tcp:host:0) on success.
  util::Result<fabric::Endpoint> Start();

  // Graceful drain: close the listener, give in-flight uploads drain_grace
  // to finish, sever the rest (they resolve as kAbortedUpload), and wait for
  // every connection state machine and in-flight gateway task to retire.
  // Idempotent; concurrent callers block until the first teardown completes.
  void Stop();

  // Blocks until Stop() is called from another thread.
  void Wait();

  const fabric::Endpoint& bound_endpoint() const { return bound_endpoint_; }
  GatewayStats stats() const;
  size_t ActiveUploads() const {
    return active_uploads_.load(std::memory_order_relaxed);
  }

 private:
  enum class ConnState : uint8_t {
    kAwaitOpen = 0,     // Idle timer armed; first frame must be UploadOpen.
    kStreaming = 1,     // Body chunks arriving; read-deadline timer armed.
    kAwaitVerdict = 2,  // Body submitted; no read watch, no timer.
    kDone = 3,          // Terminal; the connection left the live set.
  };

  // One upload connection. All fields are touched only on the connection's
  // strand; the socket is additionally ShutdownBoth() from Stop(), which is
  // safe against concurrent I/O (that is the documented way to wake it).
  struct Conn : std::enable_shared_from_this<Conn> {
    fabric::Socket socket;
    fabric::FrameAssembler assembler;
    std::shared_ptr<rt::Strand> strand;
    rt::CancelToken read_watch;
    rt::CancelToken deadline_timer;
    uint64_t deadline_gen = 0;  // Stale timer fires are ignored by generation.
    ConnState state = ConnState::kAwaitOpen;
    bool counted_active = false;  // Holds an active_uploads_ slot.
    uint64_t declared = 0;
    serve::Priority priority{};
    uint32_t next_seq = 1;
    uint64_t received = 0;
    std::unique_ptr<ingest::BlobAssembler> body;
    std::chrono::steady_clock::time_point body_start{};
    std::chrono::steady_clock::time_point window_start{};
    uint64_t window_bytes = 0;
  };

  // Task-arming helpers. Every posted callback holds one inflight_ slot so
  // Stop() can wait out stale tasks that capture `this` (the gateway shares
  // the service runtime and cannot drain it).
  void IncInflight();
  void DecInflight();
  void ArmAccept();
  void OnAcceptReady();
  void ArmRead(const std::shared_ptr<Conn>& conn);
  void ArmDeadline(const std::shared_ptr<Conn>& conn,
                   std::chrono::milliseconds delay);
  void CancelDeadline(const std::shared_ptr<Conn>& conn);

  // Strand-serialized state machine steps.
  void OnReadable(const std::shared_ptr<Conn>& conn);
  void OnDeadline(const std::shared_ptr<Conn>& conn, uint64_t generation);
  void OnVerdict(const std::shared_ptr<Conn>& conn,
                 const serve::VettingResult& result);
  // Handles one decoded frame; false means the read loop must return without
  // re-arming (the connection finished, or parked awaiting its verdict).
  bool HandleFrame(const std::shared_ptr<Conn>& conn, const fabric::Frame& frame);
  bool HandleOpen(const std::shared_ptr<Conn>& conn, const fabric::Frame& frame);
  bool HandleStreamFrame(const std::shared_ptr<Conn>& conn,
                         const fabric::Frame& frame);
  // Body-phase bookkeeping shared by completion and aborts: stage latency,
  // received bytes, active-upload slot release.
  void EndBody(const std::shared_ptr<Conn>& conn);
  // Best-effort terminal kAbortedUpload verdict + abort accounting + finish.
  void AbortUpload(const std::shared_ptr<Conn>& conn, const char* reason);
  // Early-verdict funnel (digest fastpath / shed): completed accounting + ack.
  void SendEarlyVerdict(const std::shared_ptr<Conn>& conn,
                        const fabric::UploadVerdictMsg& verdict);
  // Terminal teardown: cancels watch/timer, removes the connection from the
  // live set, wakes Stop().
  void FinishConn(const std::shared_ptr<Conn>& conn);

  serve::VettingService& service_;
  GatewayConfig config_;
  rt::Runtime& rt_;

  fabric::Listener listener_;
  fabric::Endpoint bound_endpoint_;
  rt::CancelToken accept_watch_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_once_{false};

  mutable std::mutex conns_mu_;
  std::condition_variable conns_cv_;  // Stop() drains on it.
  std::vector<std::shared_ptr<Conn>> conns_;
  int64_t inflight_ = 0;     // Posted-but-unfinished gateway tasks; conns_mu_.
  bool accept_closed_ = false;  // No more accept arming/admission; conns_mu_.

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool stopped_ = false;

  std::atomic<size_t> active_uploads_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> early_verdicts_{0};
  std::atomic<uint64_t> resumed_by_digest_{0};
  std::atomic<uint64_t> slow_loris_disconnects_{0};
  std::atomic<uint64_t> verdicts_sent_{0};
  std::atomic<uint64_t> verdict_send_failures_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

}  // namespace apichecker::gateway

#endif  // APICHECKER_GATEWAY_GATEWAY_H_
