// Deterministic network fault injection for the ingest gateway, mirroring
// emu::FaultPlan and store::IoFaultPlan: hostile-network behavior is scripted
// at exact 1-based chunk ordinals (plus seeded Bernoulli streams for
// randomized stress), so every client failure mode — stalls, mid-stream
// disconnects, torn frames, corrupted frames, trickle throughput — replays
// bit-for-bit. The plan lives on the CLIENT: the gateway under test sees real
// bytes (and real silence) on a real socket.

#ifndef APICHECKER_GATEWAY_NET_FAULT_H_
#define APICHECKER_GATEWAY_NET_FAULT_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace apichecker::gateway {

struct NetFaultPlan {
  // Seeds the Bernoulli stall stream.
  uint64_t seed = 1;
  // Per-chunk probability of a stall (randomized stress mode).
  double stall_rate = 0.0;
  // How long every stall (scripted or random) lasts. A stall longer than the
  // gateway's read deadline is the slow-loris scenario: the connection goes
  // silent mid-body and the gateway must evict it.
  std::chrono::milliseconds stall_ms{0};
  // Scripted stalls: sleep stall_ms before sending the Nth chunk.
  std::vector<uint64_t> stall_before;
  // Scripted disconnects: close the connection abruptly after the Nth chunk
  // (mid-stream EOF on the gateway side).
  std::vector<uint64_t> disconnect_after;
  // Scripted torn frames: send only a prefix of the Nth chunk's frame, then
  // close — the gateway's read loop sees a header with no body.
  std::vector<uint64_t> torn_frame_at;
  // Scripted corruption: flip one payload byte inside the Nth chunk's frame,
  // leaving the CRC stale — exercises the FAB1 disconnect-and-count path.
  std::vector<uint64_t> corrupt_at;
  // Byte-rate throttling from a chunk ordinal onward (0 = off): sleeps after
  // each send so the connection's throughput approximates bytes_per_sec.
  uint64_t throttle_from = 0;
  double throttle_bytes_per_sec = 0.0;
  // Impatient client: on the first N attempts, close right after UploadEnd
  // instead of waiting for the verdict. The body arrived intact, so the
  // gateway still classifies and caches it — the retry that follows resolves
  // by digest without re-transferring a byte (the resume path).
  uint64_t abandon_verdict_waits = 0;

  bool enabled() const {
    return stall_rate > 0.0 || !stall_before.empty() ||
           !disconnect_after.empty() || !torn_frame_at.empty() ||
           !corrupt_at.empty() || abandon_verdict_waits > 0 ||
           (throttle_from > 0 && throttle_bytes_per_sec > 0.0);
  }
};

// What the injector wants done to the Nth chunk. kDisconnect/kTornFrame/
// kCorrupt terminate the attempt; kStall delays it (and may additionally be
// fatal if the stall outlives the gateway's patience).
enum class NetFault : uint8_t {
  kNone = 0,
  kStall = 1,
  kDisconnect = 2,
  kTornFrame = 3,
  kCorrupt = 4,
};

const char* NetFaultName(NetFault fault);

// Stateful evaluator of a NetFaultPlan. Not thread-safe; each upload attempt
// owns one.
class NetFaultInjector {
 public:
  explicit NetFaultInjector(const NetFaultPlan& plan);

  // Consulted once per chunk, before it is sent. Scripted faults take
  // precedence over the random stall stream; among scripted faults,
  // disconnect > torn frame > corrupt > stall.
  NetFault OnChunk(uint64_t chunk_ordinal);

  // How long to pause after sending `sent_bytes` of the Nth chunk so the
  // connection stays at ~throttle_bytes_per_sec. Zero when throttling is off
  // or not yet active at this ordinal.
  std::chrono::milliseconds ThrottleDelay(uint64_t chunk_ordinal,
                                          size_t sent_bytes) const;

  std::chrono::milliseconds stall_duration() const { return plan_.stall_ms; }

 private:
  NetFaultPlan plan_;
  util::Rng stall_rng_;
};

}  // namespace apichecker::gateway

#endif  // APICHECKER_GATEWAY_NET_FAULT_H_
