// Request-scoped distributed tracing for the asynchronous vetting pipeline.
// The PR-1 TraceSpan is thread-local — fine for a synchronous call tree,
// useless once a submission hops from the submitter thread to a shard queue,
// the scheduler thread, a farm-pool worker, and back through the async
// resolution callbacks. A TraceContext is the piece that survives those hops:
// a plain value (trace id + sampling decision) stamped onto the submission at
// admission and carried by move/copy through every stage. Each stage records
// a StageSpan (stage name, optional label such as the farm id, queue depth at
// entry, fault flag) into the process-wide TraceCollector.
//
// Collector design: lock-striped by trace id (mirroring MetricsRegistry's
// sharding) — a stripe holds an open-trace map bounded at max_open_traces /
// kStripes (a submission storm degrades to dropped *new* traces, counted, not
// unbounded memory) and a bounded completed ring (drop-oldest). A separate
// tail sampler always retains the N slowest *complete* traces, so the p99
// outlier of a long run can be explained after the fact even though the ring
// has long since recycled it. Memory is therefore bounded by
//   max_open_traces + completed_capacity + tail_keep traces.
//
// Stage vocabulary (span names and breakdown keys are the same): submit,
// shard (queue wait), batch (linger/assembly), farm (one span per dispatch
// attempt; failover = sibling spans), classify, store, resolve. The
// per-submission *breakdown* is a contiguous partition of admitted→resolved
// wall time over those stages, so per-stage histograms sum to the end-to-end
// latency by construction (ObserveStageBreakdown feeds them).

#ifndef APICHECKER_OBS_TRACE_COLLECTOR_H_
#define APICHECKER_OBS_TRACE_COLLECTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/result.h"

namespace apichecker::obs {

// Pipeline stage names: shared between StageSpan.stage, Trace.breakdown keys,
// and StageHistogramName().
namespace stages {
inline constexpr char kUpload[] = "upload";      // Network transfer into the gateway.
inline constexpr char kSubmit[] = "submit";
inline constexpr char kShard[] = "shard";        // Shard-queue wait.
inline constexpr char kBatch[] = "batch";        // Linger + batch assembly.
inline constexpr char kFarm[] = "farm";          // Dispatch + parse + emulate.
inline constexpr char kClassify[] = "classify";
inline constexpr char kStore[] = "store";        // Verdict-store append.
inline constexpr char kResolve[] = "resolve";
}  // namespace stages

// The value that travels with a submission. trace_id == 0 means "not
// sampled": every recording call is a cheap no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  bool sampled() const { return trace_id != 0; }
};

// One hop of one submission through one stage.
struct StageSpan {
  std::string stage;        // One of obs::stages::*.
  std::string label;        // Stage-specific, e.g. "farm=2"; may be empty.
  double start_ms = 0.0;    // Relative to the collector's epoch.
  double duration_ms = 0.0;
  uint64_t queue_depth = 0; // Depth of the stage's queue at entry.
  bool fault = false;       // This attempt failed (failover sibling span).
};

// One entry of the contiguous per-submission latency partition.
struct StageMs {
  std::string stage;
  double ms = 0.0;
};

struct Trace {
  uint64_t trace_id = 0;
  std::string status;       // serve::VetStatusName value, or "rejected".
  bool from_cache = false;
  double start_ms = 0.0;    // First span's start (collector epoch).
  double total_ms = 0.0;    // Admission -> resolution.
  std::vector<StageSpan> spans;
  std::vector<StageMs> breakdown;

  bool HasStage(std::string_view stage) const;
  // Sum of the breakdown entries; within float error of total_ms.
  double BreakdownSumMs() const;
};

struct TraceCollectorOptions {
  size_t max_open_traces = 4096;     // Bound on concurrently open traces.
  size_t completed_capacity = 2048;  // Completed ring; drop-oldest.
  size_t tail_keep = 16;             // Slowest complete traces always kept.
};

class TraceCollector {
 public:
  using Options = TraceCollectorOptions;

  explicit TraceCollector(Options options = Options());

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Process-wide collector, mirroring MetricsRegistry::Default().
  static TraceCollector& Default();

  // Allocates a trace id (never 0) and opens the trace. When the open-trace
  // bound is hit the trace is dropped at birth (counted): the id is still
  // returned and every later Record/Complete for it is a counted no-op.
  uint64_t StartTrace();

  // Appends a span to an open trace. Unknown/completed ids are counted as
  // dropped spans, never an error — late spans lose to Complete by design.
  void Record(uint64_t trace_id, StageSpan span);

  // Seals the trace: moves it open -> completed ring (+ tail sampler).
  void Complete(uint64_t trace_id, std::string status, bool from_cache,
                std::vector<StageMs> breakdown, double total_ms);

  // Completed traces, oldest first (ring order per stripe, merged by start).
  std::vector<Trace> Completed() const;
  // The tail sampler's view: slowest complete traces, slowest first.
  std::vector<Trace> Slowest() const;

  size_t open_traces() const;
  uint64_t spans_recorded() const { return spans_recorded_.load(std::memory_order_relaxed); }
  uint64_t spans_dropped() const { return spans_dropped_.load(std::memory_order_relaxed); }
  uint64_t traces_started() const { return traces_started_.load(std::memory_order_relaxed); }
  uint64_t traces_completed() const { return traces_completed_.load(std::memory_order_relaxed); }
  uint64_t traces_dropped() const { return traces_dropped_.load(std::memory_order_relaxed); }
  const Options& options() const { return options_; }

  // Drops every open and completed trace (tests; the CLI between runs).
  void Clear();

  // Milliseconds since the collector's epoch (its construction time).
  double NowMs() const;
  double ToEpochMs(std::chrono::steady_clock::time_point tp) const;

 private:
  static constexpr size_t kStripes = 8;

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Trace> open;
    std::deque<Trace> completed;
  };

  Stripe& StripeFor(uint64_t trace_id) const {
    return stripes_[trace_id % kStripes];
  }

  const Options options_;
  const size_t open_per_stripe_;
  const size_t completed_per_stripe_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Stripe stripes_[kStripes];

  // Tail sampler: its own lock, touched once per *completed* trace only.
  mutable std::mutex tail_mu_;
  std::vector<Trace> tail_;  // Sorted by total_ms descending.

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> spans_recorded_{0};
  std::atomic<uint64_t> spans_dropped_{0};
  std::atomic<uint64_t> traces_started_{0};
  std::atomic<uint64_t> traces_completed_{0};
  std::atomic<uint64_t> traces_dropped_{0};
};

// Histogram series name for one breakdown stage (obs/names.h constants).
// Unknown stages map to the resolve histogram (they are remainder time).
const char* StageHistogramName(std::string_view stage);

// Feeds one submission's contiguous breakdown into the per-stage histograms
// plus the traced-e2e histogram — the pair ci.sh checks sums against.
void ObserveStageBreakdown(const std::vector<StageMs>& breakdown, double total_ms);

// Chrome about:tracing / Perfetto "trace_event" JSON: one complete ("ph":"X")
// event per span, one tid per trace.
std::string TracesToChromeJson(const std::vector<Trace>& traces);

// JSON-lines: one self-contained JSON object per trace per line.
std::string TracesToJsonLines(const std::vector<Trace>& traces);

// Writes Chrome format when `path` ends in ".trace.json", JSON-lines
// otherwise. Refuses to overwrite an existing file unless `force`.
util::Result<bool> WriteTraceFile(const std::string& path,
                                  const std::vector<Trace>& traces, bool force);

}  // namespace apichecker::obs

#endif  // APICHECKER_OBS_TRACE_COLLECTOR_H_
