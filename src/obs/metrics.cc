#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/names.h"
#include "util/logging.h"
#include "util/rng.h"

namespace apichecker::obs {

namespace {

// Round-robin stripe assignment: the first histogram touch on a thread picks
// the next stripe, so up to kStripes threads observe without contention.
size_t ThisThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % Histogram::kStripes;
  return stripe;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (sample.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    bounds_ = ExponentialBounds(0.001, 2.0, 28);  // ~1e-3 .. ~1.3e5.
  }
  stripes_ = std::make_unique<Stripe[]>(kStripes);
  for (size_t s = 0; s < kStripes; ++s) {
    stripes_[s].buckets.assign(bounds_.size() + 1, 0);
    stripes_[s].rng_state = util::SplitMix64(0x0b5e7141 + s);
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor, size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double start, double step, size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    bounds.push_back(start + step * static_cast<double>(i));
  }
  return bounds;
}

Histogram::Stripe& Histogram::LocalStripe() { return stripes_[ThisThreadStripe()]; }

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  Stripe& stripe = LocalStripe();
  std::lock_guard<std::mutex> lock(stripe.mu);
  ++stripe.buckets[bucket];
  ++stripe.count;
  stripe.sum += value;
  stripe.min = std::min(stripe.min, value);
  stripe.max = std::max(stripe.max, value);
  // Reservoir sampling (algorithm R) for quantiles: exact until the stripe
  // overflows kSamplesPerStripe, uniform thereafter.
  ++stripe.seen;
  if (stripe.sample.size() < kSamplesPerStripe) {
    stripe.sample.push_back(value);
  } else {
    stripe.rng_state = util::SplitMix64(stripe.rng_state);
    const uint64_t slot = stripe.rng_state % stripe.seen;
    if (slot < kSamplesPerStripe) {
      stripe.sample[static_cast<size_t>(slot)] = value;
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.bucket_counts.assign(bounds_.size() + 1, 0);
  for (size_t s = 0; s < kStripes; ++s) {
    const Stripe& stripe = stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (size_t b = 0; b < snapshot.bucket_counts.size(); ++b) {
      snapshot.bucket_counts[b] += stripe.buckets[b];
    }
    snapshot.count += stripe.count;
    snapshot.sum += stripe.sum;
    snapshot.min = std::min(snapshot.min, stripe.min);
    snapshot.max = std::max(snapshot.max, stripe.max);
    snapshot.sample.insert(snapshot.sample.end(), stripe.sample.begin(),
                           stripe.sample.end());
  }
  return snapshot;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (size_t s = 0; s < kStripes; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    total += stripes_[s].count;
  }
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (size_t s = 0; s < kStripes; ++s) {
    std::lock_guard<std::mutex> lock(stripes_[s].mu);
    total += stripes_[s].sum;
  }
  return total;
}

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

struct MetricsRegistry::Shard {
  mutable std::mutex mu;
  std::unordered_map<std::string, Entry> metrics;
};

MetricsRegistry::MetricsRegistry() : shards_(std::make_unique<Shard[]>(kShards)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::Default() {
  // Never destroyed; pre-registered with the canonical pipeline metrics so
  // every export carries the full schema (with canonical buckets) no matter
  // which stage touches the registry first.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    RegisterStandardMetrics(*r);
    return r;
  }();
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % kShards];
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricKind kind,
                                                      std::string_view help,
                                                      std::vector<double> bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.metrics.try_emplace(std::string(name));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.help = std::string(help);
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>(std::move(bounds));
        break;
    }
  } else if (entry.help.empty() && !help.empty()) {
    entry.help = std::string(help);
  }
  return entry;
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help) {
  Entry& entry = FindOrCreate(name, MetricKind::kCounter, help, {});
  if (entry.kind != MetricKind::kCounter) {
    APICHECKER_LOG(Error) << "metric '" << name << "' already registered as "
                          << MetricKindName(entry.kind) << ", wanted counter";
    static Counter* dummy = new Counter();
    return *dummy;
  }
  return *entry.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  Entry& entry = FindOrCreate(name, MetricKind::kGauge, help, {});
  if (entry.kind != MetricKind::kGauge) {
    APICHECKER_LOG(Error) << "metric '" << name << "' already registered as "
                          << MetricKindName(entry.kind) << ", wanted gauge";
    static Gauge* dummy = new Gauge();
    return *dummy;
  }
  return *entry.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      std::string_view help) {
  Entry& entry = FindOrCreate(name, MetricKind::kHistogram, help, std::move(bounds));
  if (entry.kind != MetricKind::kHistogram) {
    APICHECKER_LOG(Error) << "metric '" << name << "' already registered as "
                          << MetricKindName(entry.kind) << ", wanted histogram";
    static Histogram* dummy = new Histogram();
    return *dummy;
  }
  return *entry.histogram;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::vector<MetricSnapshot> snapshots;
  for (size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, entry] : shard.metrics) {
      MetricSnapshot snapshot;
      snapshot.name = name;
      snapshot.help = entry.help;
      snapshot.kind = entry.kind;
      switch (entry.kind) {
        case MetricKind::kCounter:
          snapshot.value = static_cast<double>(entry.counter->value());
          break;
        case MetricKind::kGauge:
          snapshot.value = entry.gauge->value();
          break;
        case MetricKind::kHistogram:
          snapshot.histogram = entry.histogram->Snapshot();
          break;
      }
      snapshots.push_back(std::move(snapshot));
    }
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return snapshots;
}

size_t MetricsRegistry::size() const {
  size_t total = 0;
  for (size_t s = 0; s < kShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].metrics.size();
  }
  return total;
}

void RegisterStandardMetrics(MetricsRegistry& registry) {
  using namespace names;
  // Simulated emulation minutes per app: the paper's per-app vetting times
  // live in the 1..30 minute range (Figs 3/9/11), so linear minute buckets.
  const std::vector<double> minute_buckets = Histogram::LinearBounds(0.5, 0.5, 60);
  const std::vector<double> score_buckets = Histogram::LinearBounds(0.05, 0.05, 20);

  registry.counter(kEmuAppsTotal, "apps run through the dynamic-analysis engine");
  registry.histogram(kEmuAppMinutes, minute_buckets,
                     "simulated per-app emulation wall-clock, minutes");
  registry.counter(kEmuTrackedInvocationsTotal, "API invocations that hit a hook");
  registry.counter(kEmuTotalInvocationsTotal, "all framework API invocations");
  registry.counter(kEmuDetectedTotal, "apps that detected the sandbox");
  registry.counter(kEmuCrashesTotal, "unrecoverable emulation crashes");
  registry.counter(kEmuRetriesTotal, "crashed first runs that were retried");
  registry.counter(kEmuFallbacksTotal, "lightweight-engine fallbacks to Google emulator");
  registry.counter(kEmuFarmBatchesTotal, "device-farm batches executed");
  registry.histogram(kEmuFarmMakespanMinutes, {},
                     "simulated farm makespan per batch, minutes");
  registry.histogram(kEmuFarmQueueWaitMinutes, {},
                     "simulated per-app wait for a free emulator, minutes");
  registry.gauge(kEmuFarmLastMakespanMinutes, "makespan of the most recent batch");
  registry.counter(kEmuFarmInjectedFaultsTotal,
                   "farm-level faults raised by the fault-injection plan");

  registry.histogram(kCoreTrainMs, {}, "APICHECKER end-to-end training time, ms");
  registry.histogram(kCoreClassifyLatencyUs,
                     Histogram::ExponentialBounds(1.0, 2.0, 20),
                     "per-report classification latency, microseconds");
  registry.histogram(kCoreScore, score_buckets, "classifier malice-score distribution");
  registry.counter(kCoreVerdictMaliciousTotal, "reports classified malicious");
  registry.counter(kCoreVerdictBenignTotal, "reports classified benign");
  registry.gauge(kCoreKeyApis, "key APIs selected by the current model");
  registry.gauge(kCoreFeatures, "feature-schema width of the current model");

  registry.histogram(kMlTreeTrainMs, {}, "per-tree random-forest training time, ms");
  registry.histogram(kMlForestTrainMs, {}, "whole-forest training time, ms");
  registry.counter(kMlForestTrainsTotal, "random forests trained");

  registry.counter(kMarketSubmissionsTotal, "apps submitted to the review pipeline");
  registry.counter(kMarketOutcomePublishedTotal, "review outcome: published");
  registry.counter(kMarketOutcomeRejectedFingerprintTotal,
                   "review outcome: rejected by fingerprint AV");
  registry.counter(kMarketOutcomeRejectedCheckerTotal,
                   "review outcome: rejected by APICHECKER");
  registry.counter(kMarketOutcomeFalsePositiveReleasedTotal,
                   "review outcome: flagged, cleared by manual inspection");
  registry.counter(kMarketFnReportedTotal, "false negatives reported by end users");
  registry.histogram(kMarketScanMinutes, minute_buckets,
                     "per-submission APICHECKER scan time, minutes");
  registry.histogram(kMarketDayMakespanMinutes, {},
                     "simulated farm makespan per vetting day, minutes");
  registry.histogram(kMarketRetrainMs, {}, "monthly retrain wall-clock, ms");
  registry.counter(kMarketModelPromotionsTotal, "monthly candidates promoted");
  registry.counter(kMarketModelRollbacksTotal, "monthly candidates rejected by the guard");

  registry.counter(kServeSubmissionsTotal, "submissions offered to the vetting service");
  registry.counter(kServeAcceptedTotal, "submissions admitted onto a shard queue");
  registry.counter(kServeRejectedTotal,
                   "submissions rejected by admission control (backpressure)");
  registry.counter(kServeCompletedTotal, "submissions resolved with a verdict");
  registry.counter(kServeDeadlineExpiredTotal,
                   "submissions whose deadline passed before emulation");
  registry.counter(kServeParseErrorsTotal, "submissions that failed APK parsing");
  registry.counter(kServeCacheHitsTotal, "verdicts served from the digest cache");
  registry.counter(kServeCacheMissesTotal, "digest-cache lookups that missed");
  registry.counter(kServeModelSwapsTotal, "serving-model hot swaps published");
  registry.gauge(kServeModelVersion, "serving-model snapshot version in production");
  registry.gauge(kServeQueueDepth, "submissions queued across all shards");
  registry.counter(kServeBatchesTotal, "scheduler batches executed");
  registry.histogram(kServeBatchSize, Histogram::LinearBounds(1.0, 1.0, 64),
                     "submissions per scheduler batch");
  registry.histogram(kServeQueueWaitMs, Histogram::ExponentialBounds(0.5, 2.0, 18),
                     "admission -> batch assembly wait, ms");
  registry.histogram(kServeE2eLatencyMs, Histogram::ExponentialBounds(0.5, 2.0, 18),
                     "admission -> verdict end-to-end latency, ms");
  registry.counter(kServeHashOpsTotal,
                   "full-APK SHA-1 passes on the submit path (one per blob)");
  registry.counter(kServeCacheFastpathHitsTotal,
                   "submissions resolved at Submit() without a queue round-trip");
  registry.histogram(kServeAdmissionLatencyMs,
                     Histogram::ExponentialBounds(0.001, 2.0, 24),
                     "Submit() entry -> future handed back, ms");

  // Per-stage attribution for traced submissions: the seven histograms below
  // observe one contiguous breakdown per trace, so their sums add up to
  // kServeTracedE2eMs's sum (the ci.sh invariant).
  const std::vector<double> stage_bounds = Histogram::ExponentialBounds(0.01, 2.0, 22);
  registry.histogram(kServeStageSubmitMs, stage_bounds,
                     "traced: admission entry -> shard enqueue, ms");
  registry.histogram(kServeStageQueueWaitMs, stage_bounds,
                     "traced: shard enqueue -> scheduler pop, ms");
  registry.histogram(kServeStageBatchLingerMs, stage_bounds,
                     "traced: scheduler pop -> pool dispatch, ms");
  registry.histogram(kServeStageFarmExecuteMs, stage_bounds,
                     "traced: pool dispatch -> emulation reports ready, ms");
  registry.histogram(kServeStageClassifyMs, stage_bounds,
                     "traced: model classification, ms");
  registry.histogram(kServeStageStoreAppendMs, stage_bounds,
                     "traced: verdict-store append, ms");
  registry.histogram(kServeStageResolveMs, stage_bounds,
                     "traced: bookkeeping + promise fulfilment, ms");
  registry.histogram(kServeTracedE2eMs, Histogram::ExponentialBounds(0.5, 2.0, 18),
                     "traced: admission -> resolution end-to-end, ms");

  registry.counter(kObsTraceSpansTotal, "stage spans recorded by the trace collector");
  registry.counter(kObsTraceSpansDroppedTotal,
                   "spans dropped (unknown or already-sealed trace)");
  registry.counter(kObsTracesStartedTotal, "traces opened by sampling decisions");
  registry.counter(kObsTracesCompletedTotal, "traces sealed with a resolution");
  registry.counter(kObsTracesDroppedTotal,
                   "traces shed at birth by the open-trace bound");

  registry.counter(kIngestBlobsTotal, "APK blobs materialized by the ingest layer");
  registry.counter(kIngestBytesStreamedTotal,
                   "APK bytes streamed through chunked readers");
  registry.counter(kIngestChunksTotal, "chunks read by the streaming ingest path");
  registry.gauge(kIngestBlobPoolBytes, "bytes held by live APK blobs right now");
  registry.gauge(kIngestBlobPoolPeakBytes,
                 "high-water mark of resident APK blob bytes");
  registry.histogram(kIngestParseStageMs, Histogram::ExponentialBounds(0.01, 2.0, 20),
                     "per-APK off-thread parse-stage latency, ms");

  registry.gauge(kServeFarmPoolSize, "device farms behind the batch scheduler");
  registry.gauge(kServeFarmHealthy, "farms whose circuit breaker is closed");
  registry.counter(kServeFarmBatchesRoutedTotal, "batches dispatched to a farm");
  registry.counter(kServeFarmFaultsTotal, "farm-level batch faults observed by the pool");
  registry.counter(kServeFarmRetriesTotal, "faulted batches re-routed to another farm");
  registry.counter(kServeFarmRejectedUnhealthyTotal,
                   "submissions rejected because no healthy farm was available");
  registry.counter(kServeFarmBreakerOpenTotal, "circuit-breaker open transitions");
  registry.counter(kServeFarmBreakerReprobeTotal,
                   "half-open probe batches sent to a cooling farm");
  registry.histogram(kServeFarmMakespanMinutes, {},
                     "per-farm simulated makespan per routed batch, minutes");

  registry.counter(kStoreAppendsTotal, "verdict records appended to the WAL");
  registry.counter(kStoreAppendErrorsTotal,
                   "WAL appends that failed (injected faults included)");
  registry.counter(kStoreFsyncsTotal, "WAL fsyncs issued");
  registry.counter(kStoreFsyncFailuresTotal, "WAL fsyncs that failed");
  registry.counter(kStoreInjectedFaultsTotal,
                   "store-level faults raised by the I/O fault plan");
  registry.counter(kStoreCompactionsTotal, "segment compactions completed");
  registry.counter(kStoreRecoveredRecordsTotal,
                   "valid records replayed during store recovery");
  registry.counter(kStoreTruncatedTailsTotal,
                   "torn segment tails truncated during recovery");
  registry.counter(kStoreQuarantinedSegmentsTotal,
                   "corrupt sealed segments quarantined during recovery");
  registry.counter(kStoreWarmStartHitsTotal,
                   "digest-cache hits served from store-recovered verdicts");
  registry.gauge(kStoreSegments, "segment files in the store (active included)");
  registry.gauge(kStoreLiveRecords, "distinct digests in the live index");
  registry.gauge(kStoreDeadRecords, "superseded record frames still on disk");
}

}  // namespace apichecker::obs
