#include "obs/bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "util/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace apichecker::obs {

namespace {

std::string EscapeForJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

BenchStage StageFromHistogram(const MetricsRegistry& registry,
                              const std::string& name) {
  const HistogramSnapshot snap =
      const_cast<MetricsRegistry&>(registry).histogram(name).Snapshot();
  BenchStage stage;
  stage.count = snap.count;
  stage.p50 = snap.Quantile(0.50);
  stage.p99 = snap.Quantile(0.99);
  return stage;
}

std::string BenchReportToJson(const BenchReport& report) {
  std::string out = "{\n";
  out += util::StrFormat("  \"schema\": \"%s\",\n", kBenchServeSchema);
  out += "  \"bench\": \"" + EscapeForJson(report.bench) + "\",\n";
  out += "  \"git_rev\": \"" + EscapeForJson(report.git_rev) + "\",\n";
  out += util::StrFormat("  \"submissions\": %llu,\n",
                         static_cast<unsigned long long>(report.submissions));
  out += util::StrFormat("  \"wall_s\": %.3f,\n", report.wall_s);
  out += util::StrFormat("  \"throughput_per_sec\": %.1f,\n",
                         report.throughput_per_sec);
  out += util::StrFormat("  \"baseline_throughput_per_sec\": %.1f,\n",
                         report.baseline_throughput_per_sec);
  out += util::StrFormat("  \"tracing_overhead_pct\": %.2f,\n",
                         report.tracing_overhead_pct);
  out += util::StrFormat("  \"fabric_throughput_per_sec\": %.1f,\n",
                         report.fabric_throughput_per_sec);
  out += util::StrFormat("  \"fabric_dispatch_overhead_pct\": %.2f,\n",
                         report.fabric_dispatch_overhead_pct);
  out += util::StrFormat("  \"sample_rate\": %.4f,\n", report.sample_rate);
  out += util::StrFormat("  \"traces_completed\": %llu,\n",
                         static_cast<unsigned long long>(report.traces_completed));
  out += util::StrFormat("  \"peak_rss_mb\": %.1f,\n", report.peak_rss_mb);
  out += util::StrFormat("  \"peak_blob_pool_mb\": %.2f,\n",
                         report.peak_blob_pool_mb);
  out += util::StrFormat("  \"storm_interactive_p99_ms\": %.2f,\n",
                         report.storm_interactive_p99_ms);
  out += util::StrFormat("  \"storm_interactive_slo_ms\": %.1f,\n",
                         report.storm_interactive_slo_ms);
  out += util::StrFormat(
      "  \"storm_bulk_completed\": %llu,\n",
      static_cast<unsigned long long>(report.storm_bulk_completed));
  out += util::StrFormat(
      "  \"storm_bulk_baseline_completed\": %llu,\n",
      static_cast<unsigned long long>(report.storm_bulk_baseline_completed));
  out += util::StrFormat("  \"storm_bulk_completed_floor\": %.1f,\n",
                         report.storm_bulk_completed_floor);
  out += util::StrFormat("  \"storm_shed_total\": %llu,\n",
                         static_cast<unsigned long long>(report.storm_shed_total));
  out += util::StrFormat("  \"storm_peak_blob_pool_mb\": %.2f,\n",
                         report.storm_peak_blob_pool_mb);
  out += util::StrFormat("  \"storm_spill_watermark_mb\": %.2f,\n",
                         report.storm_spill_watermark_mb);
  out += util::StrFormat("  \"upload_throughput_per_sec\": %.1f,\n",
                         report.upload_throughput_per_sec);
  out += util::StrFormat("  \"upload_inmemory_throughput_per_sec\": %.1f,\n",
                         report.upload_inmemory_throughput_per_sec);
  out += util::StrFormat("  \"upload_admission_overhead_pct\": %.2f,\n",
                         report.upload_admission_overhead_pct);
  out += util::StrFormat("  \"upload_admission_p99_ms\": %.2f,\n",
                         report.upload_admission_p99_ms);
  out += util::StrFormat("  \"upload_resolved\": %llu,\n",
                         static_cast<unsigned long long>(report.upload_resolved));
  out += util::StrFormat("  \"rt_tasks_total\": %llu,\n",
                         static_cast<unsigned long long>(report.rt_tasks_total));
  out += util::StrFormat("  \"rt_tasks_per_sec\": %.1f,\n",
                         report.rt_tasks_per_sec);
  out += util::StrFormat("  \"rt_steal_ratio\": %.4f,\n",
                         report.rt_steal_ratio);
  out += util::StrFormat("  \"rt_timer_lag_p99_ms\": %.3f,\n",
                         report.rt_timer_lag_p99_ms);
  out += util::StrFormat(
      "  \"rt_process_threads_peak\": %llu,\n",
      static_cast<unsigned long long>(report.rt_process_threads_peak));
  out += "  \"stages\": {";
  const char* sep = "";
  for (const auto& [name, stage] : report.stages) {
    out += sep;
    out += "\n    \"" + EscapeForJson(name) + "\": ";
    out += util::StrFormat("{\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"count\": %llu}",
                           stage.p50, stage.p99,
                           static_cast<unsigned long long>(stage.count));
    sep = ",";
  }
  out += "\n  }\n}\n";
  return out;
}

util::Result<bool> WriteBenchReport(const std::string& path,
                                    const BenchReport& report) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return util::Err("cannot open bench report temp file: " + tmp);
    }
    out << BenchReportToJson(report);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return util::Err("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return util::Err("cannot publish bench report: " + path);
  }
  return true;
}

double PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // Bytes.
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Kilobytes.
#endif
#else
  return 0.0;
#endif
}

std::string GitRevisionOrUnknown() {
  if (const char* env = std::getenv("APICHECKER_GIT_REV");
      env != nullptr && env[0] != '\0') {
    return env;
  }
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* pipe = ::popen("git rev-parse --short=12 HEAD 2>/dev/null", "r")) {
    char buf[64] = {0};
    const bool got = std::fgets(buf, sizeof(buf), pipe) != nullptr;
    ::pclose(pipe);
    if (got) {
      std::string rev(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
        rev.pop_back();
      }
      if (!rev.empty()) {
        return rev;
      }
    }
  }
#endif
  return "unknown";
}

}  // namespace apichecker::obs
