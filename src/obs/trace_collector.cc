#include "obs/trace_collector.h"

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <sys/stat.h>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::obs {

namespace {

std::string JsonEscapeString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendSpanJson(std::string& out, const StageSpan& span) {
  out += "{\"stage\": \"" + JsonEscapeString(span.stage) + "\"";
  if (!span.label.empty()) {
    out += ", \"label\": \"" + JsonEscapeString(span.label) + "\"";
  }
  out += util::StrFormat(", \"start_ms\": %.3f, \"duration_ms\": %.3f",
                         span.start_ms, span.duration_ms);
  out += util::StrFormat(", \"queue_depth\": %llu",
                         static_cast<unsigned long long>(span.queue_depth));
  if (span.fault) {
    out += ", \"fault\": true";
  }
  out += "}";
}

}  // namespace

bool Trace::HasStage(std::string_view stage) const {
  for (const StageSpan& span : spans) {
    if (span.stage == stage) {
      return true;
    }
  }
  return false;
}

double Trace::BreakdownSumMs() const {
  double sum = 0.0;
  for (const StageMs& entry : breakdown) {
    sum += entry.ms;
  }
  return sum;
}

TraceCollector::TraceCollector(Options options)
    : options_(options),
      open_per_stripe_(std::max<size_t>(1, options.max_open_traces / kStripes)),
      completed_per_stripe_(
          std::max<size_t>(1, options.completed_capacity / kStripes)),
      epoch_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

double TraceCollector::NowMs() const {
  return ToEpochMs(std::chrono::steady_clock::now());
}

double TraceCollector::ToEpochMs(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::milli>(tp - epoch_).count();
}

uint64_t TraceCollector::StartTrace() {
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  traces_started_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Default().counter(names::kObsTracesStartedTotal).Increment();
  Stripe& stripe = StripeFor(id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.open.size() >= open_per_stripe_) {
    // Over the open bound: the storm sheds *new* traces, visibly.
    traces_dropped_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Default().counter(names::kObsTracesDroppedTotal).Increment();
    return id;
  }
  Trace trace;
  trace.trace_id = id;
  trace.start_ms = NowMs();
  stripe.open.emplace(id, std::move(trace));
  return id;
}

void TraceCollector::Record(uint64_t trace_id, StageSpan span) {
  if (trace_id == 0) {
    return;
  }
  Stripe& stripe = StripeFor(trace_id);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.open.find(trace_id);
  if (it == stripe.open.end()) {
    // Dropped at birth, or a span racing in after Complete sealed the trace.
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Default().counter(names::kObsTraceSpansDroppedTotal).Increment();
    return;
  }
  it->second.spans.push_back(std::move(span));
  spans_recorded_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Default().counter(names::kObsTraceSpansTotal).Increment();
}

void TraceCollector::Complete(uint64_t trace_id, std::string status,
                              bool from_cache, std::vector<StageMs> breakdown,
                              double total_ms) {
  if (trace_id == 0) {
    return;
  }
  Trace done;
  {
    Stripe& stripe = StripeFor(trace_id);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.open.find(trace_id);
    if (it == stripe.open.end()) {
      return;  // Dropped at birth (already counted).
    }
    done = std::move(it->second);
    stripe.open.erase(it);
    done.status = std::move(status);
    done.from_cache = from_cache;
    done.breakdown = std::move(breakdown);
    done.total_ms = total_ms;
    std::sort(done.spans.begin(), done.spans.end(),
              [](const StageSpan& a, const StageSpan& b) {
                return a.start_ms < b.start_ms;
              });
    stripe.completed.push_back(done);
    while (stripe.completed.size() > completed_per_stripe_) {
      stripe.completed.pop_front();
    }
  }
  traces_completed_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Default().counter(names::kObsTracesCompletedTotal).Increment();

  std::lock_guard<std::mutex> lock(tail_mu_);
  if (tail_.size() < options_.tail_keep ||
      done.total_ms > tail_.back().total_ms) {
    auto pos = std::upper_bound(tail_.begin(), tail_.end(), done,
                                [](const Trace& a, const Trace& b) {
                                  return a.total_ms > b.total_ms;
                                });
    tail_.insert(pos, std::move(done));
    if (tail_.size() > options_.tail_keep) {
      tail_.pop_back();
    }
  }
}

std::vector<Trace> TraceCollector::Completed() const {
  std::vector<Trace> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    out.insert(out.end(), stripe.completed.begin(), stripe.completed.end());
  }
  std::sort(out.begin(), out.end(), [](const Trace& a, const Trace& b) {
    return a.start_ms < b.start_ms;
  });
  return out;
}

std::vector<Trace> TraceCollector::Slowest() const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  return tail_;
}

size_t TraceCollector::open_traces() const {
  size_t open = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    open += stripe.open.size();
  }
  return open;
}

void TraceCollector::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.open.clear();
    stripe.completed.clear();
  }
  std::lock_guard<std::mutex> lock(tail_mu_);
  tail_.clear();
}

const char* StageHistogramName(std::string_view stage) {
  if (stage == stages::kSubmit) return names::kServeStageSubmitMs;
  if (stage == stages::kShard) return names::kServeStageQueueWaitMs;
  if (stage == stages::kBatch) return names::kServeStageBatchLingerMs;
  if (stage == stages::kFarm) return names::kServeStageFarmExecuteMs;
  if (stage == stages::kClassify) return names::kServeStageClassifyMs;
  if (stage == stages::kStore) return names::kServeStageStoreAppendMs;
  return names::kServeStageResolveMs;
}

void ObserveStageBreakdown(const std::vector<StageMs>& breakdown,
                           double total_ms) {
  MetricsRegistry& metrics = MetricsRegistry::Default();
  for (const StageMs& entry : breakdown) {
    metrics.histogram(StageHistogramName(entry.stage)).Observe(entry.ms);
  }
  metrics.histogram(names::kServeTracedE2eMs).Observe(total_ms);
}

std::string TracesToChromeJson(const std::vector<Trace>& traces) {
  std::string out = "{\"traceEvents\": [";
  const char* sep = "";
  uint64_t tid = 0;
  for (const Trace& trace : traces) {
    ++tid;
    for (const StageSpan& span : trace.spans) {
      out += sep;
      out += "\n  {\"name\": \"" + JsonEscapeString(span.stage) + "\"";
      out += ", \"cat\": \"serve\", \"ph\": \"X\", \"pid\": 1";
      out += util::StrFormat(", \"tid\": %llu",
                             static_cast<unsigned long long>(tid));
      out += util::StrFormat(", \"ts\": %.1f, \"dur\": %.1f",
                             span.start_ms * 1000.0, span.duration_ms * 1000.0);
      out += util::StrFormat(", \"args\": {\"trace_id\": %llu",
                             static_cast<unsigned long long>(trace.trace_id));
      if (!span.label.empty()) {
        out += ", \"label\": \"" + JsonEscapeString(span.label) + "\"";
      }
      out += util::StrFormat(", \"queue_depth\": %llu",
                             static_cast<unsigned long long>(span.queue_depth));
      if (span.fault) {
        out += ", \"fault\": true";
      }
      out += "}}";
      sep = ",";
    }
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string TracesToJsonLines(const std::vector<Trace>& traces) {
  std::string out;
  for (const Trace& trace : traces) {
    out += util::StrFormat("{\"trace_id\": %llu",
                           static_cast<unsigned long long>(trace.trace_id));
    out += ", \"status\": \"" + JsonEscapeString(trace.status) + "\"";
    out += trace.from_cache ? ", \"from_cache\": true" : ", \"from_cache\": false";
    out += util::StrFormat(", \"start_ms\": %.3f, \"total_ms\": %.3f",
                           trace.start_ms, trace.total_ms);
    out += ", \"breakdown\": {";
    const char* sep = "";
    for (const StageMs& entry : trace.breakdown) {
      out += sep;
      out += "\"" + JsonEscapeString(entry.stage) + "\": ";
      out += util::StrFormat("%.3f", entry.ms);
      sep = ", ";
    }
    out += "}, \"spans\": [";
    sep = "";
    for (const StageSpan& span : trace.spans) {
      out += sep;
      AppendSpanJson(out, span);
      sep = ", ";
    }
    out += "]}\n";
  }
  return out;
}

util::Result<bool> WriteTraceFile(const std::string& path,
                                  const std::vector<Trace>& traces, bool force) {
  if (!force) {
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
      return util::Err("trace output exists: " + path +
                       " (pass --force to overwrite)");
    }
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Err("cannot open trace file: " + path);
  }
  out << (util::EndsWith(path, ".trace.json") ? TracesToChromeJson(traces)
                                              : TracesToJsonLines(traces));
  out.flush();
  if (!out) {
    return util::Err("write failed: " + path);
  }
  return true;
}

}  // namespace apichecker::obs
