#include "obs/export.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <vector>

#include "util/strings.h"

namespace apichecker::obs {

namespace {

// Shortest representation that round-trips a double through text.
std::string JsonNumber(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return util::StrFormat("%" PRId64, static_cast<int64_t>(value));
  }
  return util::StrFormat("%.17g", value);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendHistogramJson(std::string& out, const HistogramSnapshot& hist) {
  const bool empty = hist.count == 0;
  out += "{\"count\": " + util::StrFormat("%llu", static_cast<unsigned long long>(hist.count));
  out += ", \"sum\": " + JsonNumber(hist.sum);
  out += ", \"min\": " + JsonNumber(empty ? 0.0 : hist.min);
  out += ", \"max\": " + JsonNumber(empty ? 0.0 : hist.max);
  out += ", \"mean\": " + JsonNumber(hist.Mean());
  out += ", \"quantiles\": {";
  const char* sep = "";
  for (const auto& [label, q] : {std::pair<const char*, double>{"p50", 0.50},
                                 {"p90", 0.90},
                                 {"p95", 0.95},
                                 {"p99", 0.99}}) {
    out += sep;
    out += util::StrFormat("\"%s\": ", label);
    out += JsonNumber(hist.Quantile(q));
    sep = ", ";
  }
  out += "}, \"buckets\": [";
  uint64_t cumulative = 0;
  sep = "";
  for (size_t b = 0; b < hist.bucket_counts.size(); ++b) {
    cumulative += hist.bucket_counts[b];
    out += sep;
    out += "{\"le\": ";
    out += b < hist.bounds.size() ? JsonNumber(hist.bounds[b]) : std::string("\"+Inf\"");
    out += util::StrFormat(", \"count\": %llu}", static_cast<unsigned long long>(cumulative));
    sep = ", ";
  }
  out += "]}";
}

}  // namespace

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricSnapshot& metric : registry.Snapshot()) {
    if (!metric.help.empty()) {
      out += "# HELP " + metric.name + " " + metric.help + "\n";
    }
    out += util::StrFormat("# TYPE %s %s\n", metric.name.c_str(), MetricKindName(metric.kind));
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += metric.name + " " + JsonNumber(metric.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramSnapshot& hist = metric.histogram;
        uint64_t cumulative = 0;
        for (size_t b = 0; b < hist.bucket_counts.size(); ++b) {
          cumulative += hist.bucket_counts[b];
          const std::string le =
              b < hist.bounds.size() ? JsonNumber(hist.bounds[b]) : std::string("+Inf");
          out += util::StrFormat("%s_bucket{le=\"%s\"} %llu\n", metric.name.c_str(),
                                 le.c_str(), static_cast<unsigned long long>(cumulative));
        }
        out += metric.name + "_sum " + JsonNumber(hist.sum) + "\n";
        out += util::StrFormat("%s_count %llu\n", metric.name.c_str(),
                               static_cast<unsigned long long>(hist.count));
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const MetricsRegistry& registry, const TraceLog* trace) {
  std::string counters = "{";
  std::string gauges = "{";
  std::string histograms = "{";
  const char* counter_sep = "";
  const char* gauge_sep = "";
  const char* hist_sep = "";
  for (const MetricSnapshot& metric : registry.Snapshot()) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        counters += counter_sep;
        counters += "\"" + JsonEscape(metric.name) + "\": " + JsonNumber(metric.value);
        counter_sep = ", ";
        break;
      case MetricKind::kGauge:
        gauges += gauge_sep;
        gauges += "\"" + JsonEscape(metric.name) + "\": " + JsonNumber(metric.value);
        gauge_sep = ", ";
        break;
      case MetricKind::kHistogram:
        histograms += hist_sep;
        histograms += "\"" + JsonEscape(metric.name) + "\": ";
        AppendHistogramJson(histograms, metric.histogram);
        hist_sep = ", ";
        break;
    }
  }
  counters += "}";
  gauges += "}";
  histograms += "}";

  std::string out = "{\n  \"schema\": \"apichecker-metrics-v1\",\n";
  out += "  \"counters\": " + counters + ",\n";
  out += "  \"gauges\": " + gauges + ",\n";
  out += "  \"histograms\": " + histograms;
  if (trace != nullptr) {
    out += ",\n  \"spans\": [";
    const char* sep = "";
    for (const SpanRecord& span : trace->Snapshot()) {
      out += sep;
      out += "\n    {\"name\": \"" + JsonEscape(span.name) + "\"";
      out += ", \"parent\": \"" + JsonEscape(span.parent) + "\"";
      out += util::StrFormat(", \"depth\": %u", span.depth);
      out += ", \"start_ms\": " + JsonNumber(span.start_ms);
      out += ", \"duration_ms\": " + JsonNumber(span.duration_ms) + "}";
      sep = ",";
    }
    out += "\n  ],\n";
    out += util::StrFormat("  \"spans_dropped\": %llu",
                           static_cast<unsigned long long>(trace->dropped()));
  }
  out += "\n}\n";
  return out;
}

util::Result<bool> WriteMetricsFile(const std::string& path,
                                    const MetricsRegistry& registry,
                                    const TraceLog* trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Err("cannot open metrics file: " + path);
  }
  out << (util::EndsWith(path, ".prom") ? ToPrometheusText(registry)
                                        : ToJson(registry, trace));
  out.flush();
  if (!out) {
    return util::Err("write failed: " + path);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Minimal JSON reader, sufficient for the dump format above.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  util::Result<JsonValue> Parse() {
    auto value = ParseValue();
    if (!value.ok()) {
      return value;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return util::Err(ErrorAt("trailing characters"));
    }
    return value;
  }

 private:
  std::string ErrorAt(const std::string& what) {
    return util::StrFormat("json: %s at offset %zu", what.c_str(), pos_);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return util::Err(ErrorAt("unexpected end of input"));
    }
    const char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) {
        return util::Err(s.error());
      }
      JsonValue value;
      value.type = JsonValue::Type::kString;
      value.string = std::move(*s);
      return value;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      JsonValue value;
      value.type = JsonValue::Type::kBool;
      value.boolean = true;
      return value;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      JsonValue value;
      value.type = JsonValue::Type::kBool;
      return value;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue{};
    }
    return ParseNumber();
  }

  util::Result<std::string> ParseString() {
    ++pos_;  // Opening quote.
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'u': {
            // Only \u00XX (the escaper never emits higher code points).
            if (pos_ + 4 > text_.size()) {
              return util::Err(ErrorAt("bad unicode escape"));
            }
            c = static_cast<char>(std::strtol(std::string(text_.substr(pos_, 4)).c_str(),
                                              nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            c = esc;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      return util::Err(ErrorAt("unterminated string"));
    }
    ++pos_;  // Closing quote.
    return out;
  }

  util::Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return util::Err(ErrorAt("expected a value"));
    }
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return value;
  }

  util::Result<JsonValue> ParseArray() {
    ++pos_;  // '['.
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    if (Consume(']')) {
      return value;
    }
    while (true) {
      auto element = ParseValue();
      if (!element.ok()) {
        return element;
      }
      value.array.push_back(std::move(*element));
      if (Consume(']')) {
        return value;
      }
      if (!Consume(',')) {
        return util::Err(ErrorAt("expected ',' or ']'"));
      }
    }
  }

  util::Result<JsonValue> ParseObject() {
    ++pos_;  // '{'.
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    if (Consume('}')) {
      return value;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return util::Err(ErrorAt("expected an object key"));
      }
      auto key = ParseString();
      if (!key.ok()) {
        return util::Err(key.error());
      }
      if (!Consume(':')) {
        return util::Err(ErrorAt("expected ':'"));
      }
      auto element = ParseValue();
      if (!element.ok()) {
        return element;
      }
      value.object.emplace_back(std::move(*key), std::move(*element));
      if (Consume('}')) {
        return value;
      }
      if (!Consume(',')) {
        return util::Err(ErrorAt("expected ',' or '}'"));
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

double NumberOr(const JsonValue* value, double fallback) {
  return value != nullptr && value->type == JsonValue::Type::kNumber ? value->number
                                                                     : fallback;
}

}  // namespace

util::Result<ParsedDump> ParseJsonDump(std::string_view json) {
  auto root = JsonParser(json).Parse();
  if (!root.ok()) {
    return util::Err(root.error());
  }
  if (root->type != JsonValue::Type::kObject) {
    return util::Err("json: dump root is not an object");
  }
  ParsedDump dump;
  if (const JsonValue* counters = root->Find("counters")) {
    for (const auto& [name, value] : counters->object) {
      dump.counters[name] = NumberOr(&value, 0.0);
    }
  }
  if (const JsonValue* gauges = root->Find("gauges")) {
    for (const auto& [name, value] : gauges->object) {
      dump.gauges[name] = NumberOr(&value, 0.0);
    }
  }
  if (const JsonValue* histograms = root->Find("histograms")) {
    for (const auto& [name, value] : histograms->object) {
      ParsedHistogram hist;
      hist.count = static_cast<uint64_t>(NumberOr(value.Find("count"), 0.0));
      hist.sum = NumberOr(value.Find("sum"), 0.0);
      hist.min = NumberOr(value.Find("min"), 0.0);
      hist.max = NumberOr(value.Find("max"), 0.0);
      if (const JsonValue* quantiles = value.Find("quantiles")) {
        for (const auto& [q, qv] : quantiles->object) {
          hist.quantiles[q] = NumberOr(&qv, 0.0);
        }
      }
      dump.histograms[name] = std::move(hist);
    }
  }
  if (const JsonValue* spans = root->Find("spans")) {
    dump.num_spans = spans->array.size();
  }
  return dump;
}

PeriodicReporter::PeriodicReporter(std::chrono::milliseconds interval, FlushFn flush,
                                   MetricsRegistry& registry)
    : interval_(interval), flush_(std::move(flush)), registry_(registry) {
  thread_ = std::thread([this] { Loop(); });
}

PeriodicReporter::PeriodicReporter(std::chrono::milliseconds interval, FlushFn flush,
                                   TimerHost host, MetricsRegistry& registry)
    : interval_(interval),
      flush_(std::move(flush)),
      registry_(registry),
      host_(std::move(host)) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmLocked();
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

void PeriodicReporter::ArmLocked() {
  tick_armed_ = true;
  cancel_tick_ = host_(interval_, [this] { Tick(); });
  if (!cancel_tick_) tick_armed_ = false;  // Host refused: it is shutting down.
}

void PeriodicReporter::Tick() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      tick_armed_ = false;
      cv_.notify_all();
      return;
    }
  }
  flush_(registry_);
  flushes_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    tick_armed_ = false;
    cv_.notify_all();
    return;
  }
  ArmLocked();
}

void PeriodicReporter::Stop() {
  // Fully serialized: every Stop() caller returns only after the one final
  // flush has run. Without this, a second concurrent caller would observe
  // stopping_ == true and return while the first was still joining — the
  // "service stopped between ticks" snapshot it relied on not yet written.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_) {
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    if (host_) {
      // A successful cancel retires the pending tick; a lost race means the
      // tick is queued or mid-flush, so wait for it to observe stopping_.
      if (tick_armed_ && cancel_tick_ && cancel_tick_()) tick_armed_ = false;
      cv_.wait(lock, [this] { return !tick_armed_; });
    }
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
  flush_(registry_);  // Final flush so short runs never lose their tail.
  flushes_.fetch_add(1, std::memory_order_relaxed);
  stopped_ = true;
}

void PeriodicReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    flush_(registry_);
    flushes_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace apichecker::obs
