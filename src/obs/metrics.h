// Pipeline-wide metrics: named counters, gauges, and histograms collected in
// a thread-safe registry. The paper's deployment reserves 4 of 20 cores per
// server for "scheduling, monitoring and logging" (§4.2/§5.1) and states its
// headline results as throughput/latency numbers; this subsystem is the
// reproduction's equivalent — cheap enough for hot paths (atomic counters,
// lock-striped histograms) and exported as Prometheus text or JSON.
//
// Naming scheme: apichecker_<layer>_<name>{unit}, e.g.
//   apichecker_emu_farm_makespan_minutes   (histogram, unit suffix)
//   apichecker_core_verdict_malicious_total (counter, _total suffix)
// Canonical pipeline metric names live in obs/names.h.

#ifndef APICHECKER_OBS_METRICS_H_
#define APICHECKER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace apichecker::obs {

// Monotonically increasing event count. Lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value (plus atomic Add). Lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Point-in-time copy of a histogram, safe to use without the live object.
struct HistogramSnapshot {
  std::vector<double> bounds;          // Upper bucket bounds; +Inf is implied.
  std::vector<uint64_t> bucket_counts; // bounds.size() + 1 entries.
  uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::vector<double> sample;          // Merged reservoir, unsorted.

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
  // Empirical quantile (linear interpolation) over the reservoir sample.
  // Exact while the stream fits in the reservoir; an unbiased uniform-sample
  // estimate beyond that.
  double Quantile(double q) const;
};

// Fixed-bucket histogram with reservoir-backed quantiles. Observations are
// lock-striped: each thread lands on one of kStripes slots (assigned round
// robin at first use), so concurrent Observe() calls rarely contend.
class Histogram {
 public:
  // Bounds must be strictly increasing; values above the last bound land in
  // the implicit +Inf bucket. Empty bounds -> a default exponential ladder.
  explicit Histogram(std::vector<double> bounds = {});

  // {start, start*factor, ...}, n bounds total.
  static std::vector<double> ExponentialBounds(double start, double factor, size_t n);
  // {start, start+step, ...}, n bounds total.
  static std::vector<double> LinearBounds(double start, double step, size_t n);

  void Observe(double value);

  HistogramSnapshot Snapshot() const;
  uint64_t count() const;
  double sum() const;
  double Quantile(double q) const { return Snapshot().Quantile(q); }

  static constexpr size_t kStripes = 8;
  static constexpr size_t kSamplesPerStripe = 512;

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    std::vector<double> sample;  // Reservoir (algorithm R).
    uint64_t seen = 0;
    uint64_t rng_state = 0;
  };

  Stripe& LocalStripe();

  std::vector<double> bounds_;
  std::unique_ptr<Stripe[]> stripes_;
};

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* MetricKindName(MetricKind kind);

// One exported metric, flattened for the exporters.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;          // Counter/gauge value.
  HistogramSnapshot histogram; // Valid when kind == kHistogram.
};

// Thread-safe name -> metric store. Metric objects have stable addresses for
// the registry's lifetime, so call sites may cache the returned references.
// The map itself is sharded to keep registration/lookup contention low.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry the pipeline instruments into.
  static MetricsRegistry& Default();

  // Find-or-create. On a kind mismatch with an existing name, logs an error
  // and returns a process-wide dummy metric (never crashes a hot path).
  Counter& counter(std::string_view name, std::string_view help = "");
  Gauge& gauge(std::string_view name, std::string_view help = "");
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {},
                       std::string_view help = "");

  // Point-in-time copy of every metric, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard;
  static constexpr size_t kShards = 16;

  Shard& ShardFor(std::string_view name) const;
  Entry& FindOrCreate(std::string_view name, MetricKind kind, std::string_view help,
                      std::vector<double> bounds);

  std::unique_ptr<Shard[]> shards_;
};

// Registers the canonical pipeline metrics (obs/names.h) with zero values so
// every export contains the full schema even for runs that exercise only part
// of the pipeline. Idempotent.
void RegisterStandardMetrics(MetricsRegistry& registry = MetricsRegistry::Default());

}  // namespace apichecker::obs

#endif  // APICHECKER_OBS_METRICS_H_
