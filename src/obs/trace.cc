#include "obs/trace.h"

#include <thread>

namespace apichecker::obs {

namespace {

thread_local TraceSpan* t_current_span = nullptr;

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

double MsSince(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

}  // namespace

TraceLog& TraceLog::Default() {
  static TraceLog* log = new TraceLog();  // Never destroyed.
  return *log;
}

void TraceLog::Record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    // Drop the oldest half in one shot so steady-state Record stays O(1)
    // amortized instead of shifting the whole buffer per span.
    const size_t keep = capacity_ / 2;
    records_.erase(records_.begin(), records_.end() - static_cast<ptrdiff_t>(keep));
    dropped_ += capacity_ - keep;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void TraceLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
}

uint64_t TraceLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

TraceSpan::TraceSpan(std::string name, MetricsRegistry* registry, TraceLog* log)
    : name_(std::move(name)),
      registry_(registry),
      log_(log),
      parent_(t_current_span),
      depth_(parent_ == nullptr ? 0 : parent_->depth_ + 1),
      start_(std::chrono::steady_clock::now()) {
  t_current_span = this;
}

TraceSpan::~TraceSpan() {
  const auto end = std::chrono::steady_clock::now();
  t_current_span = parent_;
  const double duration_ms = MsSince(start_, end);
  if (registry_ != nullptr) {
    registry_->histogram("apichecker_trace_" + name_ + "_ms").Observe(duration_ms);
  }
  if (log_ != nullptr) {
    SpanRecord record;
    record.name = name_;
    record.parent = parent_ == nullptr ? "" : parent_->name_;
    record.depth = depth_;
    record.thread_hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
    record.start_ms = MsSince(TraceEpoch(), start_);
    record.duration_ms = duration_ms;
    log_->Record(std::move(record));
  }
}

double TraceSpan::elapsed_ms() const {
  return MsSince(start_, std::chrono::steady_clock::now());
}

const TraceSpan* TraceSpan::Current() { return t_current_span; }

ScopedTimer::ScopedTimer(Histogram& histogram, Unit unit)
    : histogram_(&histogram), unit_(unit), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::ScopedTimer(MetricsRegistry& registry, std::string_view name, Unit unit)
    : ScopedTimer(registry.histogram(name), unit) {}

ScopedTimer::~ScopedTimer() {
  if (!stopped_) {
    Stop();
  }
}

double ScopedTimer::Stop() {
  if (stopped_) {
    return 0.0;
  }
  stopped_ = true;
  const double ms = MsSince(start_, std::chrono::steady_clock::now());
  double value = ms;
  switch (unit_) {
    case Unit::kSeconds:
      value = ms / 1e3;
      break;
    case Unit::kMillis:
      break;
    case Unit::kMicros:
      value = ms * 1e3;
      break;
  }
  histogram_->Observe(value);
  return value;
}

}  // namespace apichecker::obs
