// Canonical metric names for the vetting pipeline, one constant per metric so
// call sites and tests cannot drift apart. Scheme: apichecker_<layer>_<name>
// with a unit suffix (_total for counters, _minutes/_ms/_us for times).

#ifndef APICHECKER_OBS_NAMES_H_
#define APICHECKER_OBS_NAMES_H_

namespace apichecker::obs::names {

// emu layer — device farm and dynamic-analysis engine.
inline constexpr char kEmuAppsTotal[] = "apichecker_emu_apps_total";
inline constexpr char kEmuAppMinutes[] = "apichecker_emu_app_minutes";
inline constexpr char kEmuTrackedInvocationsTotal[] =
    "apichecker_emu_tracked_invocations_total";
inline constexpr char kEmuTotalInvocationsTotal[] =
    "apichecker_emu_total_invocations_total";
inline constexpr char kEmuDetectedTotal[] = "apichecker_emu_detected_total";
inline constexpr char kEmuCrashesTotal[] = "apichecker_emu_crashes_total";
inline constexpr char kEmuRetriesTotal[] = "apichecker_emu_retries_total";
inline constexpr char kEmuFallbacksTotal[] = "apichecker_emu_fallbacks_total";
inline constexpr char kEmuFarmBatchesTotal[] = "apichecker_emu_farm_batches_total";
inline constexpr char kEmuFarmMakespanMinutes[] =
    "apichecker_emu_farm_makespan_minutes";
inline constexpr char kEmuFarmQueueWaitMinutes[] =
    "apichecker_emu_farm_queue_wait_minutes";
inline constexpr char kEmuFarmLastMakespanMinutes[] =
    "apichecker_emu_farm_last_makespan_minutes";
inline constexpr char kEmuFarmInjectedFaultsTotal[] =
    "apichecker_emu_farm_injected_faults_total";

// core layer — APICHECKER train/classify.
inline constexpr char kCoreTrainMs[] = "apichecker_core_train_ms";
inline constexpr char kCoreClassifyLatencyUs[] = "apichecker_core_classify_latency_us";
inline constexpr char kCoreScore[] = "apichecker_core_score";
inline constexpr char kCoreVerdictMaliciousTotal[] =
    "apichecker_core_verdict_malicious_total";
inline constexpr char kCoreVerdictBenignTotal[] =
    "apichecker_core_verdict_benign_total";
inline constexpr char kCoreKeyApis[] = "apichecker_core_key_apis";
inline constexpr char kCoreFeatures[] = "apichecker_core_features";

// ml layer — random-forest training.
inline constexpr char kMlTreeTrainMs[] = "apichecker_ml_tree_train_ms";
inline constexpr char kMlForestTrainMs[] = "apichecker_ml_forest_train_ms";
inline constexpr char kMlForestTrainsTotal[] = "apichecker_ml_forest_trains_total";

// market layer — review pipeline and deployment simulation.
inline constexpr char kMarketSubmissionsTotal[] = "apichecker_market_submissions_total";
inline constexpr char kMarketOutcomePublishedTotal[] =
    "apichecker_market_outcome_published_total";
inline constexpr char kMarketOutcomeRejectedFingerprintTotal[] =
    "apichecker_market_outcome_rejected_fingerprint_total";
inline constexpr char kMarketOutcomeRejectedCheckerTotal[] =
    "apichecker_market_outcome_rejected_apichecker_total";
inline constexpr char kMarketOutcomeFalsePositiveReleasedTotal[] =
    "apichecker_market_outcome_false_positive_released_total";
inline constexpr char kMarketFnReportedTotal[] = "apichecker_market_fn_reported_total";
inline constexpr char kMarketScanMinutes[] = "apichecker_market_scan_minutes";
inline constexpr char kMarketDayMakespanMinutes[] =
    "apichecker_market_day_makespan_minutes";
inline constexpr char kMarketRetrainMs[] = "apichecker_market_retrain_ms";
inline constexpr char kMarketModelPromotionsTotal[] =
    "apichecker_market_model_promotions_total";
inline constexpr char kMarketModelRollbacksTotal[] =
    "apichecker_market_model_rollbacks_total";

// serve layer — online vetting service (admission, batching, cache, swap).
inline constexpr char kServeSubmissionsTotal[] = "apichecker_serve_submissions_total";
inline constexpr char kServeAcceptedTotal[] = "apichecker_serve_accepted_total";
inline constexpr char kServeRejectedTotal[] = "apichecker_serve_rejected_total";
inline constexpr char kServeCompletedTotal[] = "apichecker_serve_completed_total";
inline constexpr char kServeDeadlineExpiredTotal[] =
    "apichecker_serve_deadline_expired_total";
inline constexpr char kServeParseErrorsTotal[] = "apichecker_serve_parse_errors_total";
inline constexpr char kServeCacheHitsTotal[] = "apichecker_serve_cache_hits_total";
inline constexpr char kServeCacheMissesTotal[] = "apichecker_serve_cache_misses_total";
inline constexpr char kServeModelSwapsTotal[] = "apichecker_serve_model_swaps_total";
inline constexpr char kServeModelVersion[] = "apichecker_serve_model_version";
inline constexpr char kServeQueueDepth[] = "apichecker_serve_queue_depth";
inline constexpr char kServeBatchesTotal[] = "apichecker_serve_batches_total";
inline constexpr char kServeBatchSize[] = "apichecker_serve_batch_size";
inline constexpr char kServeQueueWaitMs[] = "apichecker_serve_queue_wait_ms";
inline constexpr char kServeE2eLatencyMs[] = "apichecker_serve_e2e_latency_ms";
inline constexpr char kServeHashOpsTotal[] = "apichecker_serve_hash_ops_total";
inline constexpr char kServeCacheFastpathHitsTotal[] =
    "apichecker_serve_cache_fastpath_hits_total";
// Also emitted as per-size-bucket variants with an embedded Prometheus label,
// e.g. apichecker_serve_admission_latency_ms{size="large"}
// (see serve::AdmissionSeriesName).
inline constexpr char kServeAdmissionLatencyMs[] =
    "apichecker_serve_admission_latency_ms";

// serve layer — overload control & QoS. kServeShedTotal, kServeAcceptedTotal,
// kServeCompletedTotal, kServeDeadlineExpiredTotal, and kServeE2eLatencyMs are
// additionally emitted as per-priority-class variants with an embedded label,
// e.g. apichecker_serve_shed_total{class="bulk"} (see serve::ClassSeriesName).
// kServePressureState is the watermark state machine's current level
// (0 normal, 1 pressure, 2 critical).
inline constexpr char kServeShedTotal[] = "apichecker_serve_shed_total";
inline constexpr char kServePressureState[] = "apichecker_serve_pressure_state";
inline constexpr char kServePressureTransitionsTotal[] =
    "apichecker_serve_pressure_transitions_total";

// serve layer — per-stage latency attribution for traced submissions. Each
// histogram observes one entry of a trace's contiguous breakdown, so the
// stage sums add up (within float error) to kServeTracedE2eMs's sum — the
// invariant ci.sh checks from the metrics dump.
inline constexpr char kServeStageSubmitMs[] = "apichecker_serve_stage_submit_ms";
inline constexpr char kServeStageQueueWaitMs[] =
    "apichecker_serve_stage_queue_wait_ms";
inline constexpr char kServeStageBatchLingerMs[] =
    "apichecker_serve_stage_batch_linger_ms";
inline constexpr char kServeStageFarmExecuteMs[] =
    "apichecker_serve_stage_farm_execute_ms";
inline constexpr char kServeStageClassifyMs[] =
    "apichecker_serve_stage_classify_ms";
inline constexpr char kServeStageStoreAppendMs[] =
    "apichecker_serve_stage_store_append_ms";
inline constexpr char kServeStageResolveMs[] =
    "apichecker_serve_stage_resolve_ms";
inline constexpr char kServeTracedE2eMs[] = "apichecker_serve_traced_e2e_ms";

// obs layer — the trace collector's own accounting.
inline constexpr char kObsTraceSpansTotal[] = "apichecker_obs_trace_spans_total";
inline constexpr char kObsTraceSpansDroppedTotal[] =
    "apichecker_obs_trace_spans_dropped_total";
inline constexpr char kObsTracesStartedTotal[] =
    "apichecker_obs_traces_started_total";
inline constexpr char kObsTracesCompletedTotal[] =
    "apichecker_obs_traces_completed_total";
inline constexpr char kObsTracesDroppedTotal[] =
    "apichecker_obs_traces_dropped_total";

// ingest layer — streaming APK intake (chunked read, incremental hash,
// ref-counted blob pool, off-thread parse stage).
inline constexpr char kIngestBlobsTotal[] = "apichecker_ingest_blobs_total";
inline constexpr char kIngestBytesStreamedTotal[] =
    "apichecker_ingest_bytes_streamed_total";
inline constexpr char kIngestChunksTotal[] = "apichecker_ingest_chunks_total";
inline constexpr char kIngestBlobPoolBytes[] = "apichecker_ingest_blob_pool_bytes";
inline constexpr char kIngestBlobPoolPeakBytes[] =
    "apichecker_ingest_blob_pool_peak_bytes";
inline constexpr char kIngestParseStageMs[] = "apichecker_ingest_parse_stage_ms";
// Spill-to-disk blobs: payloads above the spill threshold live in an mmap'd
// unlinked temp file instead of the heap, so the blob-pool gauge bounds RSS.
inline constexpr char kIngestBlobsSpilledTotal[] =
    "apichecker_ingest_blobs_spilled_total";
inline constexpr char kIngestSpilledBlobBytes[] =
    "apichecker_ingest_spilled_blob_bytes";
inline constexpr char kIngestSpillFailuresTotal[] =
    "apichecker_ingest_spill_failures_total";

// serve layer — multi-farm pool (routing, failover, circuit breakers). The
// aggregate series below also exist as per-farm variants with an embedded
// Prometheus label, e.g. apichecker_serve_farm_batches_routed_total{farm="2"}
// (see serve::FarmSeriesName).
inline constexpr char kServeFarmPoolSize[] = "apichecker_serve_farm_pool_size";
inline constexpr char kServeFarmHealthy[] = "apichecker_serve_farm_healthy";
inline constexpr char kServeFarmBatchesRoutedTotal[] =
    "apichecker_serve_farm_batches_routed_total";
inline constexpr char kServeFarmFaultsTotal[] = "apichecker_serve_farm_faults_total";
inline constexpr char kServeFarmRetriesTotal[] = "apichecker_serve_farm_retries_total";
inline constexpr char kServeFarmRejectedUnhealthyTotal[] =
    "apichecker_serve_farm_rejected_unhealthy_total";
inline constexpr char kServeFarmBreakerOpenTotal[] =
    "apichecker_serve_farm_breaker_open_total";
inline constexpr char kServeFarmBreakerReprobeTotal[] =
    "apichecker_serve_farm_breaker_reprobe_total";
inline constexpr char kServeFarmMakespanMinutes[] =
    "apichecker_serve_farm_makespan_minutes";

// fabric layer — cross-process farm fabric (framed RPC transport between the
// vetting front-end and `apichecker farm` worker processes). Counter/byte
// series exist on both sides; kFabricProtocolErrorsTotal is additionally
// emitted with a kind label, e.g.
// apichecker_fabric_protocol_errors_total{kind="crc_mismatch"}.
inline constexpr char kFabricFramesSentTotal[] = "apichecker_fabric_frames_sent_total";
inline constexpr char kFabricFramesReceivedTotal[] =
    "apichecker_fabric_frames_received_total";
inline constexpr char kFabricBytesSentTotal[] = "apichecker_fabric_bytes_sent_total";
inline constexpr char kFabricBytesReceivedTotal[] =
    "apichecker_fabric_bytes_received_total";
inline constexpr char kFabricProtocolErrorsTotal[] =
    "apichecker_fabric_protocol_errors_total";
inline constexpr char kFabricHandshakesTotal[] =
    "apichecker_fabric_handshakes_total";
inline constexpr char kFabricHandshakeFailuresTotal[] =
    "apichecker_fabric_handshake_failures_total";
inline constexpr char kFabricHeartbeatsTotal[] =
    "apichecker_fabric_heartbeats_total";
inline constexpr char kFabricHeartbeatMissesTotal[] =
    "apichecker_fabric_heartbeat_misses_total";
inline constexpr char kFabricDisconnectsTotal[] =
    "apichecker_fabric_disconnects_total";
inline constexpr char kFabricReconnectsTotal[] =
    "apichecker_fabric_reconnects_total";
inline constexpr char kFabricModelSyncsTotal[] =
    "apichecker_fabric_model_syncs_total";
inline constexpr char kFabricRpcMs[] = "apichecker_fabric_rpc_ms";
inline constexpr char kFabricWorkerConnectionsTotal[] =
    "apichecker_fabric_worker_connections_total";
inline constexpr char kFabricWorkerBatchesTotal[] =
    "apichecker_fabric_worker_batches_total";
inline constexpr char kFabricWorkerAppsTotal[] =
    "apichecker_fabric_worker_apps_total";
inline constexpr char kFabricWorkerMaliciousTotal[] =
    "apichecker_fabric_worker_malicious_total";

// store layer — persistent verdict store (WAL append, fsync, recovery,
// compaction) and its warm-start handoff into the serve digest cache.
inline constexpr char kStoreAppendsTotal[] = "apichecker_store_appends_total";
inline constexpr char kStoreAppendErrorsTotal[] =
    "apichecker_store_append_errors_total";
inline constexpr char kStoreFsyncsTotal[] = "apichecker_store_fsyncs_total";
inline constexpr char kStoreFsyncFailuresTotal[] =
    "apichecker_store_fsync_failures_total";
inline constexpr char kStoreInjectedFaultsTotal[] =
    "apichecker_store_injected_faults_total";
inline constexpr char kStoreCompactionsTotal[] =
    "apichecker_store_compactions_total";
inline constexpr char kStoreRecoveredRecordsTotal[] =
    "apichecker_store_recovered_records_total";
inline constexpr char kStoreTruncatedTailsTotal[] =
    "apichecker_store_truncated_tails_total";
inline constexpr char kStoreQuarantinedSegmentsTotal[] =
    "apichecker_store_quarantined_segments_total";
inline constexpr char kStoreWarmStartHitsTotal[] =
    "apichecker_store_warm_start_hits_total";
// Fleet verdict-segment exchange (VerdictStore::ExportSegments/ImportSegments).
inline constexpr char kStoreSegmentsExportedTotal[] =
    "apichecker_store_segments_exported_total";
inline constexpr char kStoreRecordsExportedTotal[] =
    "apichecker_store_records_exported_total";
inline constexpr char kStoreSegmentsImportedTotal[] =
    "apichecker_store_segments_imported_total";
inline constexpr char kStoreRecordsImportedTotal[] =
    "apichecker_store_records_imported_total";
inline constexpr char kStoreImportSupersededTotal[] =
    "apichecker_store_import_superseded_total";
inline constexpr char kStoreSegments[] = "apichecker_store_segments";
inline constexpr char kStoreLiveRecords[] = "apichecker_store_live_records";
inline constexpr char kStoreDeadRecords[] = "apichecker_store_dead_records";

// gateway layer — network ingest gateway (framed APK upload over the fabric
// transport). kGatewayUploadsAbortedTotal is additionally emitted with a
// reason label, e.g. apichecker_gateway_uploads_aborted_total{reason="slow_loris"}.
inline constexpr char kGatewayConnectionsTotal[] =
    "apichecker_gateway_connections_total";
inline constexpr char kGatewayUploadsAcceptedTotal[] =
    "apichecker_gateway_uploads_accepted_total";
inline constexpr char kGatewayUploadsCompletedTotal[] =
    "apichecker_gateway_uploads_completed_total";
inline constexpr char kGatewayUploadsAbortedTotal[] =
    "apichecker_gateway_uploads_aborted_total";
inline constexpr char kGatewaySlowLorisDisconnectsTotal[] =
    "apichecker_gateway_slow_loris_disconnects_total";
inline constexpr char kGatewayEarlyVerdictsTotal[] =
    "apichecker_gateway_early_verdicts_total";
inline constexpr char kGatewayResumedByDigestTotal[] =
    "apichecker_gateway_resumed_by_digest_total";
inline constexpr char kGatewayVerdictsSentTotal[] =
    "apichecker_gateway_verdicts_sent_total";
inline constexpr char kGatewayVerdictSendFailuresTotal[] =
    "apichecker_gateway_verdict_send_failures_total";
inline constexpr char kGatewayBytesReceivedTotal[] =
    "apichecker_gateway_bytes_received_total";
inline constexpr char kGatewayActiveUploads[] = "apichecker_gateway_active_uploads";
inline constexpr char kGatewayUploadStageMs[] = "apichecker_gateway_upload_stage_ms";
inline constexpr char kGatewayClientRetriesTotal[] =
    "apichecker_gateway_client_retries_total";
inline constexpr char kGatewayNetInjectedFaultsTotal[] =
    "apichecker_gateway_net_injected_faults_total";

// rt layer — the unified async runtime (executor + timer wheel + poller).
// Every former per-subsystem thread (scheduler loop, farm dispatchers,
// fabric monitors, gateway upload connections, periodic reporter) is now a
// task on this runtime, so these series describe the whole serving spine.
inline constexpr char kRtTasksTotal[] = "apichecker_rt_tasks_total";
inline constexpr char kRtStealsTotal[] = "apichecker_rt_steals_total";
inline constexpr char kRtQueueDepth[] = "apichecker_rt_queue_depth";
inline constexpr char kRtTimersScheduledTotal[] =
    "apichecker_rt_timers_scheduled_total";
inline constexpr char kRtTimersCancelledTotal[] =
    "apichecker_rt_timers_cancelled_total";
inline constexpr char kRtTimerLagMs[] = "apichecker_rt_timer_lag_ms";
inline constexpr char kRtPollWakeupsTotal[] = "apichecker_rt_poll_wakeups_total";
inline constexpr char kRtFdWatchesTotal[] = "apichecker_rt_fd_watches_total";
// Peak `Threads:` sampled from /proc/self/status at connection-accept time —
// the CI gate that proves thread count is O(cores), not O(connections).
inline constexpr char kRtProcessThreadsPeak[] =
    "apichecker_rt_process_threads_peak";

}  // namespace apichecker::obs::names

#endif  // APICHECKER_OBS_NAMES_H_
