// Prometheus label helpers. The registry keys metrics by a flat series name
// that may embed a label, e.g. apichecker_serve_farm_faults_total{farm="2"}.
// Anything file- or operator-derived (farm names, store paths) can contain
// backslashes, quotes, or newlines — the exposition format requires them
// escaped inside label values (\\, \", \n), and an unescaped quote would also
// corrupt the series name itself. Build labeled names through these helpers
// so every producer escapes identically and the JSON dump round-trips.

#ifndef APICHECKER_OBS_LABELS_H_
#define APICHECKER_OBS_LABELS_H_

#include <string>
#include <string_view>

namespace apichecker::obs {

// Escapes a Prometheus label value: backslash, double-quote, and newline per
// the text exposition format. Everything else passes through untouched.
inline std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// base{key="value"} with the value escaped.
inline std::string LabeledSeriesName(std::string_view base, std::string_view key,
                                     std::string_view value) {
  std::string out;
  out.reserve(base.size() + key.size() + value.size() + 5);
  out += base;
  out += '{';
  out += key;
  out += "=\"";
  out += EscapeLabelValue(value);
  out += "\"}";
  return out;
}

// base{key1="value1",key2="value2"} with both values escaped. Keys must be
// given in the order the series is always built with — the registry keys by
// the flat string, so producers that disagree on label order would split one
// logical series in two.
inline std::string LabeledSeriesName2(std::string_view base, std::string_view key1,
                                      std::string_view value1, std::string_view key2,
                                      std::string_view value2) {
  std::string out;
  out.reserve(base.size() + key1.size() + value1.size() + key2.size() +
              value2.size() + 9);
  out += base;
  out += '{';
  out += key1;
  out += "=\"";
  out += EscapeLabelValue(value1);
  out += "\",";
  out += key2;
  out += "=\"";
  out += EscapeLabelValue(value2);
  out += "\"}";
  return out;
}

}  // namespace apichecker::obs

#endif  // APICHECKER_OBS_LABELS_H_
