// Schema-versioned benchmark reports (BENCH_*.json): the tracked perf
// trajectory. bench_serve_throughput and the CLI `serve` command both emit
// one, so every PR from here on has a recorded throughput + per-stage latency
// baseline that CI validates (required keys present, values finite and
// non-zero) and reviewers can diff in-repo. Writes go through a temp file
// (<path>.tmp) and an atomic rename so a crashed bench never leaves a torn
// report behind.

#ifndef APICHECKER_OBS_BENCH_REPORT_H_
#define APICHECKER_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/result.h"

namespace apichecker::obs {

inline constexpr char kBenchServeSchema[] = "apichecker-bench-serve-v1";

struct BenchStage {
  double p50 = 0.0;
  double p99 = 0.0;
  uint64_t count = 0;
};

struct BenchReport {
  std::string bench;            // e.g. "serve_throughput".
  std::string git_rev;          // Short commit hash, or "unknown".
  uint64_t submissions = 0;     // Resolved submissions in the measured window.
  double wall_s = 0.0;
  double throughput_per_sec = 0.0;          // With tracing at sample_rate.
  double baseline_throughput_per_sec = 0.0; // Same workload, tracing off;
                                            // 0 when not measured (CLI runs).
  double tracing_overhead_pct = 0.0;        // (baseline - traced) / baseline.
  double fabric_throughput_per_sec = 0.0;   // Same workload over the socket
                                            // fabric (--fabric N); 0 when the
                                            // fabric pass was not run.
  double fabric_dispatch_overhead_pct = 0.0;  // (baseline - fabric) / baseline:
                                              // the cost of cross-process
                                              // dispatch vs in-process farms.
  double sample_rate = 0.0;
  uint64_t traces_completed = 0;
  double peak_rss_mb = 0.0;
  double peak_blob_pool_mb = 0.0;
  // Mixed-priority storm pass (overload control & QoS); all 0 when not run.
  // Bulk offered at >= 2x capacity with an interactive trickle: the pass
  // holds when interactive p99 stays within its SLO, bulk throughput stays
  // within 10% of the bulk-only baseline, and the heap blob pool stays under
  // the spill watermark (spilled payloads are file-backed, not RSS).
  double storm_interactive_p99_ms = 0.0;
  double storm_interactive_slo_ms = 0.0;
  // Bulk completions under the storm vs the bulk-only baseline run, as
  // COUNTS over the fixed-length trace: at capacity the counts are
  // governor-determined and repeatable, while sub-second elapsed times make
  // per-second rates too noisy to compare. The floor is the gate the bench
  // enforces: 0.90 x baseline, normalized for the bulk slots the interactive
  // trickle displaced.
  uint64_t storm_bulk_completed = 0;
  uint64_t storm_bulk_baseline_completed = 0;
  double storm_bulk_completed_floor = 0.0;
  uint64_t storm_shed_total = 0;
  double storm_peak_blob_pool_mb = 0.0;   // Heap pool peak DURING the storm.
  double storm_spill_watermark_mb = 0.0;  // The bound the pool must stay under.
  // Network upload ingest pass (IngestGateway over a unix socket); all 0 when
  // not run. The overhead compares identical admission work entered via
  // ReadApkBlob + Submit() in-process (the control) vs streamed through the
  // gateway's framed-upload protocol; the p99 is client-observed wall time to
  // a terminal verdict with 10% of the upload cohort scripted to stall.
  double upload_throughput_per_sec = 0.0;
  double upload_inmemory_throughput_per_sec = 0.0;
  double upload_admission_overhead_pct = 0.0;
  double upload_admission_p99_ms = 0.0;
  uint64_t upload_resolved = 0;
  // Unified-runtime accounting pass: the apichecker_rt_* counters accumulated
  // across every pass above (all services share the process-wide registry).
  // Task throughput is tasks over the whole bench wall; the steal ratio is
  // steals / tasks (work-stealing activity, not a problem indicator); timer
  // lag quantiles come straight from the wheel's fire-time histogram; the
  // threads peak is the O(cores)-not-O(connections) witness. All 0 when the
  // runtime ran no work (never, in practice).
  uint64_t rt_tasks_total = 0;
  double rt_tasks_per_sec = 0.0;
  double rt_steal_ratio = 0.0;
  double rt_timer_lag_p99_ms = 0.0;
  uint64_t rt_process_threads_peak = 0;
  // Stage name -> quantiles: admission, e2e, plus the per-stage breakdown
  // histograms (submit, shard, batch, farm, classify, store, resolve).
  std::map<std::string, BenchStage> stages;
};

// Quantiles of one registry histogram, for filling BenchReport::stages.
BenchStage StageFromHistogram(const MetricsRegistry& registry,
                              const std::string& name);

// Serializes the report (schema kBenchServeSchema). Always overwrites: a
// trajectory file is meant to be regenerated run over run.
util::Result<bool> WriteBenchReport(const std::string& path,
                                    const BenchReport& report);
std::string BenchReportToJson(const BenchReport& report);

// Peak resident set of this process in MB (getrusage), 0 if unavailable.
double PeakRssMb();

// $APICHECKER_GIT_REV if set, else `git rev-parse --short HEAD`, else
// "unknown" — benches run both inside and outside a checkout.
std::string GitRevisionOrUnknown();

}  // namespace apichecker::obs

#endif  // APICHECKER_OBS_BENCH_REPORT_H_
