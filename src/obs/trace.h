// Scoped timers and span tracing. A TraceSpan measures one pipeline stage and
// nests: each thread keeps a span stack, so spans opened while another is
// active record it as their parent. Completed spans land in two places: a
// per-span-name latency histogram in the metrics registry
// (apichecker_trace_<name>_ms) and a bounded in-memory TraceLog that the JSON
// exporter can dump for offline timeline inspection.

#ifndef APICHECKER_OBS_TRACE_H_
#define APICHECKER_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace apichecker::obs {

// One finished span, as kept by the TraceLog.
struct SpanRecord {
  std::string name;
  std::string parent;  // Empty for root spans.
  uint32_t depth = 0;  // 0 = root.
  uint64_t thread_hash = 0;
  double start_ms = 0.0;  // Offset from process trace epoch.
  double duration_ms = 0.0;
};

// Bounded, thread-safe buffer of finished spans (oldest dropped first).
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 4096) : capacity_(capacity) {}

  static TraceLog& Default();

  void Record(SpanRecord record);
  std::vector<SpanRecord> Snapshot() const;
  void Clear();
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
  uint64_t dropped_ = 0;
};

// RAII span. Records into MetricsRegistry::Default() + TraceLog::Default()
// unless told otherwise. Spans must be destroyed in LIFO order per thread
// (automatic with scoped usage).
class TraceSpan {
 public:
  explicit TraceSpan(std::string name,
                     MetricsRegistry* registry = &MetricsRegistry::Default(),
                     TraceLog* log = &TraceLog::Default());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  const std::string& name() const { return name_; }
  const TraceSpan* parent() const { return parent_; }
  uint32_t depth() const { return depth_; }
  double elapsed_ms() const;

  // The innermost open span on this thread, or nullptr.
  static const TraceSpan* Current();

 private:
  std::string name_;
  MetricsRegistry* registry_;
  TraceLog* log_;
  TraceSpan* parent_;
  uint32_t depth_;
  std::chrono::steady_clock::time_point start_;
};

// RAII timer recording elapsed time into a histogram on destruction. Unlike
// TraceSpan it has no nesting bookkeeping — use it for hot-path latencies.
class ScopedTimer {
 public:
  enum class Unit : uint8_t { kSeconds, kMillis, kMicros };

  explicit ScopedTimer(Histogram& histogram, Unit unit = Unit::kMillis);
  ScopedTimer(MetricsRegistry& registry, std::string_view name, Unit unit = Unit::kMillis);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Stops now, records once, and returns the elapsed value in `unit`.
  double Stop();

 private:
  Histogram* histogram_;
  Unit unit_;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace apichecker::obs

#endif  // APICHECKER_OBS_TRACE_H_
