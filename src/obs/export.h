// Metric exporters: Prometheus text exposition and a JSON dump (plus a
// parser for the dump, so telemetry consumers — and the round-trip tests —
// can read it back without a JSON library), and a periodic reporter that
// flushes snapshots from a background thread.

#ifndef APICHECKER_OBS_EXPORT_H_
#define APICHECKER_OBS_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace apichecker::obs {

// Prometheus text exposition format (# HELP / # TYPE / samples).
std::string ToPrometheusText(const MetricsRegistry& registry);

// JSON dump: {"counters": {...}, "gauges": {...}, "histograms": {...},
// "spans": [...]}. Histograms carry count/sum/min/max, cumulative buckets,
// and p50/p90/p95/p99. Pass a TraceLog to include finished spans.
std::string ToJson(const MetricsRegistry& registry, const TraceLog* trace = nullptr);

// Writes ToJson (or Prometheus text when `path` ends in ".prom") to `path`.
util::Result<bool> WriteMetricsFile(const std::string& path,
                                    const MetricsRegistry& registry,
                                    const TraceLog* trace = nullptr);

// Parsed form of the JSON dump, for round-tripping and telemetry consumers.
struct ParsedHistogram {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::map<std::string, double> quantiles;  // "p50" -> value.
};

struct ParsedDump {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, ParsedHistogram> histograms;
  size_t num_spans = 0;
};

util::Result<ParsedDump> ParseJsonDump(std::string_view json);

// Invokes `flush` every `interval` (and once on Stop). Typical use:
// periodically dump ToJson to a sidecar file during long runs.
//
// Two hosting modes. The thread constructor owns a background thread (the
// historical shape — still right for tools with no runtime). The timer-host
// constructor instead self-reschedules one-shot timers on a caller-provided
// scheduler, so a process with a unified rt::Runtime spends zero threads on
// reporting; the host is a plain std::function so obs never depends on rt.
class PeriodicReporter {
 public:
  using FlushFn = std::function<void(const MetricsRegistry&)>;
  // Cancels a scheduled tick; true = the tick will never run. An empty
  // function means the host refused (it is shutting down).
  using CancelFn = std::function<bool()>;
  // Schedules `tick` to run once after `delay` (rt::Runtime::PostAfter
  // wrapped, or any equivalent). Must not run `tick` inline.
  using TimerHost =
      std::function<CancelFn(std::chrono::milliseconds delay, std::function<void()> tick)>;

  PeriodicReporter(std::chrono::milliseconds interval, FlushFn flush,
                   MetricsRegistry& registry = MetricsRegistry::Default());
  // Timer-host mode: no thread; each tick re-arms the next via `host`.
  PeriodicReporter(std::chrono::milliseconds interval, FlushFn flush, TimerHost host,
                   MetricsRegistry& registry = MetricsRegistry::Default());
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  // Idempotent and fully serialized: the first caller joins the thread and
  // runs one final flush; any concurrent caller blocks until that flush has
  // completed, so no caller ever returns before the last snapshot is out.
  void Stop();

  uint64_t flush_count() const { return flushes_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  void Tick();
  void ArmLocked();  // Requires mu_.

  std::chrono::milliseconds interval_;
  FlushFn flush_;
  MetricsRegistry& registry_;
  TimerHost host_;  // Empty in thread mode.
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool tick_armed_ = false;  // Timer-host mode: a tick is scheduled or running.
  CancelFn cancel_tick_;     // Guarded by mu_.
  std::mutex stop_mu_;   // Serializes Stop(); held across the final flush.
  bool stopped_ = false; // Guarded by stop_mu_.
  std::atomic<uint64_t> flushes_{0};
  std::thread thread_;
};

}  // namespace apichecker::obs

#endif  // APICHECKER_OBS_EXPORT_H_
