// FarmBackend: the batch-execution edge the serve::FarmPool dispatch threads
// call. Two implementations exist — LocalFarmBackend wraps an in-process
// emu::DeviceFarm (the pre-fabric behavior, still the default), and
// RemoteFarmClient (remote_client.h) speaks the fabric protocol to an
// `apichecker farm` worker process. The pool's least-loaded routing, digest
// affinity, circuit breakers, and bounded failover operate on this interface
// and cannot tell the two apart, except that a remote backend additionally
// reports connection-health transitions so the breaker can open on a dead
// worker without waiting for a batch to fail.

#ifndef APICHECKER_FABRIC_BACKEND_H_
#define APICHECKER_FABRIC_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "android/api_universe.h"
#include "apk/apk.h"
#include "core/checker.h"
#include "emu/farm.h"

namespace apichecker::fabric {

// Fingerprint of the API universe both ends of a fabric connection must
// share. Covers the generation parameters that shape emulation reports; a
// mismatch fails the handshake rather than silently producing garbage
// features on one side.
uint64_t UniverseChecksum(const android::ApiUniverse& universe);

class FarmBackend {
 public:
  enum class Health : uint8_t {
    kLost = 0,      // Connection gone or heartbeat missed: open the breaker.
    kRestored = 1,  // Reconnected: make the breaker probe-eligible now.
  };
  using HealthListener = std::function<void(Health, const std::string& reason)>;

  virtual ~FarmBackend() = default;

  // Executes one batch. `model_version`/`checker` describe the serving model
  // snapshot the batch was formed under (a remote backend ships the model to
  // its worker when the version changes); `tracked` is the hook set derived
  // from that same snapshot. Failures are in-band: a fault result with
  // farm_fault set (and transport_fault for connection failures), never an
  // exception — the pool's failover path predates the fabric and stays as-is.
  virtual emu::BatchResult ExecuteBatch(std::span<const apk::ApkFile> apks,
                                        uint32_t model_version,
                                        const core::ApiChecker& checker,
                                        const emu::TrackedApiSet& tracked) = 0;

  // Registers the pool's breaker hook. May be invoked from the backend's
  // monitor thread at any moment until StopMonitor() returns.
  virtual void SetHealthListener(HealthListener /*listener*/) {}

  // Stops background threads (heartbeat monitor, reconnector) and joins
  // them. After this returns the health listener will not be invoked again —
  // the pool calls this in Close() before its own state is torn down.
  virtual void StopMonitor() {}

  virtual const char* kind() const = 0;      // "local" | "remote".
  virtual std::string describe() const = 0;  // Human-readable target.

  // Wall-clock milliseconds the most recent ExecuteBatch spent on the wire
  // (0 for local backends); feeds the per-attempt rpc span in traces.
  virtual double last_rpc_ms() const { return 0.0; }
};

// In-process execution on an owned DeviceFarm.
class LocalFarmBackend : public FarmBackend {
 public:
  LocalFarmBackend(const android::ApiUniverse& universe, emu::FarmConfig config)
      : farm_(universe, std::move(config)) {}

  emu::BatchResult ExecuteBatch(std::span<const apk::ApkFile> apks, uint32_t model_version,
                                const core::ApiChecker& checker,
                                const emu::TrackedApiSet& tracked) override {
    (void)model_version;
    (void)checker;
    return farm_.RunBatch(apks, tracked);
  }

  const char* kind() const override { return "local"; }
  std::string describe() const override;

  emu::DeviceFarm& farm() { return farm_; }

 private:
  emu::DeviceFarm farm_;
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_BACKEND_H_
