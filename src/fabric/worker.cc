#include "fabric/worker.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <thread>
#include <utility>

#include "apk/apk.h"
#include "core/model_store.h"
#include "fabric/backend.h"
#include "fabric/messages.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::fabric {

namespace {

// Per readiness event, stop draining a connection after this many bytes and
// re-arm: level-triggered epoll refires immediately if more is buffered, and
// the yield keeps one fat RunBatch upload from monopolizing a reader pass.
constexpr size_t kMaxReadPerEvent = 4u << 20;

}  // namespace

FarmWorker::FarmWorker(const android::ApiUniverse& universe, FarmWorkerConfig config)
    : universe_(universe),
      config_(std::move(config)),
      farm_(universe, config_.farm),
      universe_checksum_(UniverseChecksum(universe)) {}

FarmWorker::~FarmWorker() { Stop(); }

util::Result<Endpoint> FarmWorker::Start() {
  auto endpoint = ParseEndpoint(config_.endpoint);
  if (!endpoint.ok()) return util::Err(endpoint.error());
  auto listener = Listener::Bind(*endpoint);
  if (!listener.ok()) return util::Err(listener.error());
  listener_ = std::move(*listener);
  bound_endpoint_ = listener_.bound_endpoint();
  size_t workers = config_.rt_threads;
  if (workers == 0) {
    workers = std::max<size_t>(4, std::thread::hardware_concurrency());
  }
  runtime_ = std::make_unique<rt::Runtime>(rt::RuntimeOptions{workers});
  ArmAccept();
  return bound_endpoint_;
}

void FarmWorker::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Late or concurrent caller: block until the first teardown completes.
    std::unique_lock<std::mutex> lock(wait_mu_);
    wait_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    accept_closed_ = true;
    accept_watch_.Cancel();
  }
  listener_.Close();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Sever: a handler blocked in send (or an emulation about to send) fails
    // fast instead of stalling the runtime drain below.
    for (auto& conn : conns_) conn->socket.ShutdownBoth();
  }
  // The private runtime drains: in-flight handlers run to completion against
  // the severed sockets, unfired watches are cancelled, every rt thread
  // joins. After this, nothing can touch `this` or any Conn again.
  if (runtime_) runtime_->Shutdown();
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stopped_ = true;
  }
  wait_cv_.notify_all();
}

void FarmWorker::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [this] { return stopped_; });
}

void FarmWorker::ArmAccept() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  if (accept_closed_) return;
  accept_watch_ = runtime_->PostFd(listener_.fd(), [this] { OnAcceptReady(); });
}

void FarmWorker::OnAcceptReady() {
  if (stopping_.load(std::memory_order_acquire)) return;
  for (;;) {
    auto accepted = listener_.TryAccept();
    if (!accepted.ok()) return;  // Listener closed or broken; Stop() owns teardown.
    if (!accepted->has_value()) break;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Default()
        .counter(obs::names::kFabricWorkerConnectionsTotal)
        .Increment();
    auto conn = std::make_shared<Conn>();
    conn->socket = std::move(**accepted);
    conn->strand = runtime_->MakeStrand();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_.load(std::memory_order_acquire)) return;
      conns_.push_back(conn);
    }
    // First arming happens on the strand so the watch token is only ever
    // touched strand-serialized (a fired watch posts there too).
    conn->strand->Post([this, conn] {
      if (!conn->done) ArmRead(conn);
    });
  }
  ArmAccept();
}

void FarmWorker::ArmRead(const std::shared_ptr<Conn>& conn) {
  std::shared_ptr<Conn> self = conn;
  conn->read_watch = runtime_->PostFd(conn->socket.fd(), [this, self] {
    self->strand->Post([this, self] { OnConnReadable(self); });
  });
  // An invalid token means the runtime is stopping; the connection is torn
  // down by Stop() instead.
}

void FarmWorker::DropConn(const std::shared_ptr<Conn>& conn) {
  if (conn->done) return;
  conn->done = true;
  conn->read_watch.Cancel();
  std::lock_guard<std::mutex> lock(conns_mu_);
  std::erase(conns_, conn);  // Destroys (closes) the socket with the last ref.
}

void FarmWorker::OnConnReadable(const std::shared_ptr<Conn>& conn) {
  if (conn->done) return;
  if (stopping_.load(std::memory_order_acquire)) {
    DropConn(conn);
    return;
  }
  std::array<uint8_t, 64 * 1024> buf;
  bool dead = false;
  size_t drained = 0;
  while (drained < kMaxReadPerEvent) {
    auto got = conn->socket.ReadSome(buf);
    if (got.status == Socket::ReadStatus::kData) {
      conn->assembler.Feed(std::span<const uint8_t>(buf.data(), got.bytes));
      drained += got.bytes;
      continue;
    }
    if (got.status == Socket::ReadStatus::kWouldBlock) break;
    dead = true;  // EOF or transport error — drop after the buffered frames.
    break;
  }
  for (;;) {
    auto next = conn->assembler.Pull();
    if (next.status == DecodeStatus::kTruncated) break;
    if (next.status != DecodeStatus::kOk) {  // Already counted by the assembler.
      DropConn(conn);
      return;
    }
    if (!HandleFrame(*conn, next.frame)) {
      DropConn(conn);
      return;
    }
  }
  if (dead) {
    DropConn(conn);
    return;
  }
  ArmRead(conn);
}

bool FarmWorker::HandleFrame(Conn& conn, const Frame& frame) {
  auto& registry = obs::MetricsRegistry::Default();
  Socket& socket = conn.socket;
  // Handshake first: anything else on a fresh connection is a protocol error.
  if (!conn.hello_done) {
    if (frame.type != MsgType::kHello) return false;
    auto hello = DecodeHello(frame.payload);
    if (!hello.ok()) return false;
    if (hello->universe_checksum != universe_checksum_) {
      registry.counter(obs::names::kFabricHandshakeFailuresTotal).Increment();
      ErrorMsg err{util::StrFormat("universe mismatch: worker %016llx, client %016llx",
                                   static_cast<unsigned long long>(universe_checksum_),
                                   static_cast<unsigned long long>(hello->universe_checksum))};
      (void)socket.SendFrame(MsgType::kError, EncodeError(err));
      return false;
    }
    HelloAck ack;
    ack.worker_id = config_.worker_id;
    ack.pid = static_cast<uint32_t>(::getpid());
    ack.universe_checksum = universe_checksum_;
    if (!socket.SendFrame(MsgType::kHelloAck, EncodeHelloAck(ack)).ok()) return false;
    conn.hello_done = true;
    return true;
  }

  switch (frame.type) {
    case MsgType::kPing: {
      auto ping = DecodePing(frame.payload);
      if (!ping.ok()) return false;
      return socket.SendFrame(MsgType::kPong, EncodePing(*ping)).ok();
    }
    case MsgType::kSetModel: {
      auto set_model = DecodeSetModel(frame.payload);
      if (!set_model.ok()) return false;
      auto restored = core::DeserializeChecker(universe_, set_model->blob);
      if (!restored.ok()) {
        ErrorMsg err{"model restore failed: " + restored.error()};
        return socket.SendFrame(MsgType::kError, EncodeError(err)).ok();
      }
      conn.checker.emplace(std::move(*restored));
      conn.tracked = conn.checker->MakeTrackedSet();
      conn.model_version = set_model->model_version;
      SetModelAck model_ack;
      model_ack.model_version = conn.model_version;
      model_ack.tracked_count = static_cast<uint32_t>(conn.tracked.count());
      return socket.SendFrame(MsgType::kSetModelAck, EncodeSetModelAck(model_ack)).ok();
    }
    case MsgType::kRunBatch: {
      auto request = DecodeRunBatch(frame.payload);
      if (!request.ok()) return false;
      if (!conn.checker.has_value() || request->model_version != conn.model_version) {
        ErrorMsg err{util::StrFormat(
            "batch for model v%u but worker has %s", request->model_version,
            conn.checker.has_value()
                ? util::StrFormat("v%u", conn.model_version).c_str()
                : "no model")};
        return socket.SendFrame(MsgType::kError, EncodeError(err)).ok();
      }
      // Re-parse every APK through the hostile-hardened container parser —
      // the wire is no more trusted than a market submission.
      std::vector<apk::ApkFile> apks;
      apks.reserve(request->apks.size());
      std::string parse_error;
      for (size_t i = 0; i < request->apks.size(); ++i) {
        auto parsed = apk::ParseApk(request->apks[i]);
        if (!parsed.ok()) {
          parse_error = util::StrFormat("apk %zu: %s", i, parsed.error().c_str());
          break;
        }
        apks.push_back(std::move(*parsed));
      }
      if (!parse_error.empty()) {
        ErrorMsg err{"apk parse failed: " + parse_error};
        return socket.SendFrame(MsgType::kError, EncodeError(err)).ok();
      }
      emu::BatchResult result = farm_.RunBatch(apks, conn.tracked);
      batches_served_.fetch_add(1, std::memory_order_relaxed);
      registry.counter(obs::names::kFabricWorkerBatchesTotal).Increment();
      registry.counter(obs::names::kFabricWorkerAppsTotal).Increment(apks.size());
      if (!result.farm_fault) {
        // Worker-side classification: the farm tier sees its own malicious
        // rate (ops visibility). Verdict persistence stays with the
        // front-end, which owns the single-writer verdict store.
        uint64_t malicious = 0;
        for (const auto& report : result.reports) {
          if (conn.checker->Classify(report).malicious) ++malicious;
        }
        if (malicious > 0) {
          registry.counter(obs::names::kFabricWorkerMaliciousTotal).Increment(malicious);
        }
      }
      return socket.SendFrame(MsgType::kBatchResult, EncodeBatchResult(result)).ok();
    }
    default: {
      // Unexpected but well-formed frame: tell the peer and drop them.
      ErrorMsg err{util::StrFormat("unexpected %s frame", MsgTypeName(frame.type))};
      (void)socket.SendFrame(MsgType::kError, EncodeError(err));
      return false;
    }
  }
}

}  // namespace apichecker::fabric
