#include "fabric/worker.h"

#include <unistd.h>

#include <optional>
#include <utility>

#include "apk/apk.h"
#include "core/checker.h"
#include "core/model_store.h"
#include "fabric/backend.h"
#include "fabric/messages.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::fabric {

FarmWorker::FarmWorker(const android::ApiUniverse& universe, FarmWorkerConfig config)
    : universe_(universe),
      config_(std::move(config)),
      farm_(universe, config_.farm),
      universe_checksum_(UniverseChecksum(universe)) {}

FarmWorker::~FarmWorker() { Stop(); }

util::Result<Endpoint> FarmWorker::Start() {
  auto endpoint = ParseEndpoint(config_.endpoint);
  if (!endpoint.ok()) return util::Err(endpoint.error());
  auto listener = Listener::Bind(*endpoint);
  if (!listener.ok()) return util::Err(listener.error());
  listener_ = std::move(*listener);
  bound_endpoint_ = listener_.bound_endpoint();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return bound_endpoint_;
}

void FarmWorker::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Close();  // Unblocks the accept thread.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->socket.ShutdownBoth();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    stopped_ = true;
  }
  wait_cv_.notify_all();
}

void FarmWorker::Wait() {
  std::unique_lock<std::mutex> lock(wait_mu_);
  wait_cv_.wait(lock, [this] { return stopped_; });
}

void FarmWorker::ReapLocked() {
  std::erase_if(conns_, [](const std::unique_ptr<Connection>& conn) {
    if (conn->done.load(std::memory_order_acquire) && conn->thread.joinable()) {
      conn->thread.join();
      return true;
    }
    return false;
  });
}

void FarmWorker::AcceptLoop() {
  while (!stopping_.load()) {
    auto socket = listener_.Accept();
    if (!socket.ok()) {
      if (stopping_.load()) return;
      // Transient accept failure (e.g. EMFILE); keep serving.
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Default()
        .counter(obs::names::kFabricWorkerConnectionsTotal)
        .Increment();
    std::lock_guard<std::mutex> lock(conns_mu_);
    ReapLocked();
    auto conn = std::make_unique<Connection>();
    Connection* raw = conn.get();
    raw->socket = std::move(*socket);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] {
      ServeConnection(raw);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void FarmWorker::ServeConnection(Connection* conn) {
  Socket& socket = conn->socket;
  auto& registry = obs::MetricsRegistry::Default();
  // Handshake first: anything else on a fresh connection is a protocol error.
  auto hello_frame = socket.RecvFrame();
  if (!hello_frame.ok() || hello_frame->type != MsgType::kHello) {
    return;  // RecvFrame already counted any protocol error.
  }
  auto hello = DecodeHello(hello_frame->payload);
  if (!hello.ok()) return;
  if (hello->universe_checksum != universe_checksum_) {
    registry.counter(obs::names::kFabricHandshakeFailuresTotal).Increment();
    ErrorMsg err{util::StrFormat("universe mismatch: worker %016llx, client %016llx",
                                 static_cast<unsigned long long>(universe_checksum_),
                                 static_cast<unsigned long long>(hello->universe_checksum))};
    (void)socket.SendFrame(MsgType::kError, EncodeError(err));
    return;
  }
  HelloAck ack;
  ack.worker_id = config_.worker_id;
  ack.pid = static_cast<uint32_t>(::getpid());
  ack.universe_checksum = universe_checksum_;
  if (!socket.SendFrame(MsgType::kHelloAck, EncodeHelloAck(ack)).ok()) return;

  // Per-connection serving model: shipped by the client, versioned so
  // re-sends only happen on model evolution or reconnect.
  std::optional<core::ApiChecker> checker;
  emu::TrackedApiSet tracked;
  uint32_t model_version = UINT32_MAX;

  while (!stopping_.load()) {
    auto frame = socket.RecvFrame();
    if (!frame.ok()) return;  // Disconnect (EOF, timeout, or protocol error).
    switch (frame->type) {
      case MsgType::kPing: {
        auto ping = DecodePing(frame->payload);
        if (!ping.ok()) return;
        if (!socket.SendFrame(MsgType::kPong, EncodePing(*ping)).ok()) return;
        break;
      }
      case MsgType::kSetModel: {
        auto set_model = DecodeSetModel(frame->payload);
        if (!set_model.ok()) return;
        auto restored = core::DeserializeChecker(universe_, set_model->blob);
        if (!restored.ok()) {
          ErrorMsg err{"model restore failed: " + restored.error()};
          if (!socket.SendFrame(MsgType::kError, EncodeError(err)).ok()) return;
          break;
        }
        checker.emplace(std::move(*restored));
        tracked = checker->MakeTrackedSet();
        model_version = set_model->model_version;
        SetModelAck model_ack;
        model_ack.model_version = model_version;
        model_ack.tracked_count = static_cast<uint32_t>(tracked.count());
        if (!socket.SendFrame(MsgType::kSetModelAck, EncodeSetModelAck(model_ack)).ok()) {
          return;
        }
        break;
      }
      case MsgType::kRunBatch: {
        auto request = DecodeRunBatch(frame->payload);
        if (!request.ok()) return;
        if (!checker.has_value() || request->model_version != model_version) {
          ErrorMsg err{util::StrFormat(
              "batch for model v%u but worker has %s", request->model_version,
              checker.has_value() ? util::StrFormat("v%u", model_version).c_str()
                                  : "no model")};
          if (!socket.SendFrame(MsgType::kError, EncodeError(err)).ok()) return;
          break;
        }
        // Re-parse every APK through the hostile-hardened container parser —
        // the wire is no more trusted than a market submission.
        std::vector<apk::ApkFile> apks;
        apks.reserve(request->apks.size());
        std::string parse_error;
        for (size_t i = 0; i < request->apks.size(); ++i) {
          auto parsed = apk::ParseApk(request->apks[i]);
          if (!parsed.ok()) {
            parse_error = util::StrFormat("apk %zu: %s", i, parsed.error().c_str());
            break;
          }
          apks.push_back(std::move(*parsed));
        }
        if (!parse_error.empty()) {
          ErrorMsg err{"apk parse failed: " + parse_error};
          if (!socket.SendFrame(MsgType::kError, EncodeError(err)).ok()) return;
          break;
        }
        emu::BatchResult result = farm_.RunBatch(apks, tracked);
        batches_served_.fetch_add(1, std::memory_order_relaxed);
        registry.counter(obs::names::kFabricWorkerBatchesTotal).Increment();
        registry.counter(obs::names::kFabricWorkerAppsTotal).Increment(apks.size());
        if (!result.farm_fault) {
          // Worker-side classification: the farm tier sees its own malicious
          // rate (ops visibility). Verdict persistence stays with the
          // front-end, which owns the single-writer verdict store.
          uint64_t malicious = 0;
          for (const auto& report : result.reports) {
            if (checker->Classify(report).malicious) ++malicious;
          }
          if (malicious > 0) {
            registry.counter(obs::names::kFabricWorkerMaliciousTotal).Increment(malicious);
          }
        }
        if (!socket.SendFrame(MsgType::kBatchResult, EncodeBatchResult(result)).ok()) {
          return;
        }
        break;
      }
      default: {
        // Unexpected but well-formed frame: tell the peer and drop them.
        ErrorMsg err{util::StrFormat("unexpected %s frame", MsgTypeName(frame->type))};
        (void)socket.SendFrame(MsgType::kError, EncodeError(err));
        return;
      }
    }
  }
}

}  // namespace apichecker::fabric
