#include "fabric/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::fabric {

namespace {

std::string ErrnoMessage(const char* what) {
  return util::StrFormat("%s: %s", what, std::strerror(errno));
}

void SetTimeout(int fd, int option, std::chrono::milliseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
}

util::Result<sockaddr_un> UnixAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return util::Err(util::StrFormat("unix socket path too long (%zu bytes): %s",
                                     path.size(), path.c_str()));
  }
  std::memcpy(addr.sun_path, path.data(), path.size());
  return addr;
}

// connect() interrupted by a signal keeps completing asynchronously; the
// retry then fails EISCONN ("already connected"), which is success here. The
// send/recv loops already retry EINTR — connect and accept predate that
// treatment.
int ConnectRetryEintr(int fd, const sockaddr* addr, socklen_t len) {
  while (::connect(fd, addr, len) != 0) {
    if (errno == EISCONN) return 0;
    if (errno != EINTR) return -1;
  }
  return 0;
}

}  // namespace

std::string Endpoint::ToString() const {
  if (kind == EndpointKind::kUnix) return "unix:" + path;
  return util::StrFormat("tcp:%s:%u", host.c_str(), port);
}

util::Result<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint endpoint;
  if (spec.rfind("unix:", 0) == 0) {
    endpoint.kind = EndpointKind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) return util::Err("empty unix socket path: " + spec);
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    endpoint.kind = EndpointKind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      return util::Err("tcp endpoint must be tcp:host:port: " + spec);
    }
    endpoint.host = rest.substr(0, colon);
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || port > 65535) {
      return util::Err("bad tcp port: " + spec);
    }
    endpoint.port = static_cast<uint16_t>(port);
    return endpoint;
  }
  return util::Err("endpoint must start with unix: or tcp: — got " + spec);
}

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

util::Result<Socket> Socket::Connect(const Endpoint& endpoint,
                                     std::chrono::milliseconds timeout) {
  int fd = -1;
  if (endpoint.kind == EndpointKind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return util::Err(ErrnoMessage("socket(AF_UNIX)"));
    auto addr = UnixAddr(endpoint.path);
    if (!addr.ok()) {
      ::close(fd);
      return util::Err(addr.error());
    }
    // SO_SNDTIMEO bounds a blocking connect() just as it bounds send().
    SetTimeout(fd, SO_SNDTIMEO, timeout);
    if (ConnectRetryEintr(fd, reinterpret_cast<const sockaddr*>(&*addr),
                          sizeof(*addr)) != 0) {
      std::string err = ErrnoMessage("connect");
      ::close(fd);
      return util::Err(err + " (" + endpoint.ToString() + ")");
    }
  } else {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const std::string port_str = std::to_string(endpoint.port);
    const int rc = ::getaddrinfo(endpoint.host.c_str(), port_str.c_str(), &hints, &res);
    if (rc != 0) {
      return util::Err(util::StrFormat("getaddrinfo(%s): %s", endpoint.host.c_str(),
                                       ::gai_strerror(rc)));
    }
    std::string last_err = "no addresses";
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) {
        last_err = ErrnoMessage("socket");
        continue;
      }
      SetTimeout(fd, SO_SNDTIMEO, timeout);
      if (ConnectRetryEintr(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      last_err = ErrnoMessage("connect");
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return util::Err(last_err + " (" + endpoint.ToString() + ")");
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket(fd);
}

void Socket::SetRecvTimeout(std::chrono::milliseconds timeout) {
  if (fd_ >= 0) SetTimeout(fd_, SO_RCVTIMEO, timeout);
}

void Socket::SetSendTimeout(std::chrono::milliseconds timeout) {
  if (fd_ >= 0) SetTimeout(fd_, SO_SNDTIMEO, timeout);
}

util::Result<bool> Socket::SendAll(const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that died mid-write must surface as EPIPE, not a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Err(ErrnoMessage("send"));
    }
    if (n == 0) return util::Err("send: peer closed");
    sent += static_cast<size_t>(n);
  }
  return true;
}

util::Result<bool> Socket::RecvAll(uint8_t* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd_, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return util::Err(ErrnoMessage("recv"));
    }
    if (n == 0) {
      return util::Err(got == 0 ? "peer closed" : "recv: peer closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

util::Result<bool> Socket::SendFrame(MsgType type, std::span<const uint8_t> payload) {
  if (fd_ < 0) return util::Err("send on closed socket");
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  auto sent = SendAll(frame.data(), frame.size());
  if (!sent.ok()) return sent;
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kFabricFramesSentTotal).Increment();
  registry.counter(obs::names::kFabricBytesSentTotal).Increment(frame.size());
  return true;
}

util::Result<Frame> Socket::RecvFrame() {
  if (fd_ < 0) return util::Err("recv on closed socket");
  std::vector<uint8_t> buffer(kFrameHeaderBytes);
  auto header = RecvAll(buffer.data(), kFrameHeaderBytes);
  if (!header.ok()) return util::Err(header.error());
  // Validate the header before committing to the payload read: DecodeFrame on
  // the bare header reports bad magic / oversized length immediately and
  // kTruncated when the header itself is plausible.
  DecodeResult peek = DecodeFrame(buffer);
  if (peek.status != DecodeStatus::kOk && peek.status != DecodeStatus::kTruncated) {
    CountProtocolError(peek.status);
    return util::Err(util::StrFormat("protocol error: %s", DecodeStatusName(peek.status)));
  }
  uint32_t payload_len = 0;
  std::memcpy(&payload_len, buffer.data() + 8, sizeof(payload_len));
  const size_t rest = static_cast<size_t>(payload_len) + kFrameTrailerBytes;
  buffer.resize(kFrameHeaderBytes + rest);
  auto body = RecvAll(buffer.data() + kFrameHeaderBytes, rest);
  if (!body.ok()) return util::Err(body.error());
  DecodeResult decoded = DecodeFrame(buffer);
  if (decoded.status != DecodeStatus::kOk) {
    CountProtocolError(decoded.status);
    return util::Err(util::StrFormat("protocol error: %s", DecodeStatusName(decoded.status)));
  }
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kFabricFramesReceivedTotal).Increment();
  registry.counter(obs::names::kFabricBytesReceivedTotal).Increment(buffer.size());
  return std::move(decoded.frame);
}

Socket::ReadSomeResult Socket::ReadSome(std::span<uint8_t> out) {
  ReadSomeResult result;
  if (fd_ < 0) {
    result.status = ReadStatus::kError;
    result.error = "read on closed socket";
    return result;
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, out.data(), out.size(), MSG_DONTWAIT);
    if (n > 0) {
      result.status = ReadStatus::kData;
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.status = ReadStatus::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.status = ReadStatus::kWouldBlock;
      return result;
    }
    result.status = ReadStatus::kError;
    result.error = ErrnoMessage("recv");
    return result;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FrameAssembler::Feed(std::span<const uint8_t> bytes) {
  // Compact once the consumed prefix dominates — keeps the buffer from
  // growing without bound across many frames while amortizing the memmove.
  if (offset_ > 4096 && offset_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<ptrdiff_t>(offset_));
    offset_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameAssembler::Next FrameAssembler::Pull() {
  Next next;
  const std::span<const uint8_t> pending(buffer_.data() + offset_,
                                         buffer_.size() - offset_);
  DecodeResult decoded = DecodeFrame(pending);
  next.status = decoded.status;
  if (decoded.status == DecodeStatus::kOk) {
    offset_ += decoded.consumed;
    if (offset_ == buffer_.size()) {
      buffer_.clear();
      offset_ = 0;
    }
    auto& registry = obs::MetricsRegistry::Default();
    registry.counter(obs::names::kFabricFramesReceivedTotal).Increment();
    registry.counter(obs::names::kFabricBytesReceivedTotal).Increment(decoded.consumed);
    next.frame = std::move(decoded.frame);
  } else if (decoded.status != DecodeStatus::kTruncated) {
    CountProtocolError(decoded.status);
  }
  return next;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_acq_rel)),
      endpoint_(std::move(other.endpoint_)),
      nonblocking_(std::exchange(other.nonblocking_, false)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_acq_rel),
              std::memory_order_release);
    endpoint_ = std::move(other.endpoint_);
    nonblocking_ = std::exchange(other.nonblocking_, false);
  }
  return *this;
}

util::Result<Listener> Listener::Bind(const Endpoint& endpoint) {
  Listener listener;
  listener.endpoint_ = endpoint;
  if (endpoint.kind == EndpointKind::kUnix) {
    auto addr = UnixAddr(endpoint.path);
    if (!addr.ok()) return util::Err(addr.error());
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return util::Err(ErrnoMessage("socket(AF_UNIX)"));
    // A previous worker that was SIGKILLed leaves its socket file behind;
    // rebinding the same path must succeed.
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
      std::string err = ErrnoMessage("bind");
      ::close(fd);
      return util::Err(err + " (" + endpoint.ToString() + ")");
    }
    if (::listen(fd, 16) != 0) {
      std::string err = ErrnoMessage("listen");
      ::close(fd);
      return util::Err(err);
    }
    listener.fd_ = fd;
    return listener;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::Err(ErrnoMessage("socket(AF_INET)"));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (endpoint.host.empty() || endpoint.host == "*") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return util::Err("tcp listen host must be an IPv4 address: " + endpoint.host);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = ErrnoMessage("bind");
    ::close(fd);
    return util::Err(err + " (" + endpoint.ToString() + ")");
  }
  if (::listen(fd, 16) != 0) {
    std::string err = ErrnoMessage("listen");
    ::close(fd);
    return util::Err(err);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    listener.endpoint_.port = ntohs(bound.sin_port);
  }
  listener.fd_ = fd;
  return listener;
}

util::Result<Socket> Listener::Accept() {
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) return util::Err("accept on closed listener");
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
    // EINTR must not tear down the accept loop (a SIGCHLD from a reaped farm
    // worker used to kill the server's accept thread). Close() unblocks a
    // parked accept via shutdown(), which surfaces as a non-EINTR errno, so
    // this retry cannot spin past a shutdown.
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return util::Err(ErrnoMessage("accept"));
  if (endpoint_.kind == EndpointKind::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return Socket(fd);
}

util::Result<std::optional<Socket>> Listener::TryAccept() {
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) return util::Err("accept on closed listener");
  if (!nonblocking_) {
    const int flags = ::fcntl(listen_fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(listen_fd, F_SETFL, flags | O_NONBLOCK) != 0) {
      return util::Err(ErrnoMessage("fcntl(O_NONBLOCK)"));
    }
    nonblocking_ = true;
  }
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::optional<Socket>{};
    // A peer that reset between readiness and accept is spurious readiness,
    // not a broken listener.
    if (errno == ECONNABORTED || errno == EPROTO) return std::optional<Socket>{};
    return util::Err(ErrnoMessage("accept"));
  }
  if (endpoint_.kind == EndpointKind::kTcp) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return std::optional<Socket>{Socket(fd)};
}

void Listener::Close() {
  // Claim the fd atomically so a concurrent Close (or the destructor racing
  // an explicit Close) shuts down and closes exactly once.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks a thread parked in accept(); plain close() does not
    // on Linux.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    if (endpoint_.kind == EndpointKind::kUnix) ::unlink(endpoint_.path.c_str());
  }
}

}  // namespace apichecker::fabric
