#include "fabric/backend.h"

#include "util/strings.h"

namespace apichecker::fabric {

uint64_t UniverseChecksum(const android::ApiUniverse& universe) {
  // FNV-1a over the generation-shaping parameters. Not cryptographic — it
  // only needs to catch two processes launched with different --apis/--seed
  // flags, which would otherwise exchange reports whose ApiIds mean
  // different framework methods.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(universe.num_apis());
  mix(universe.sdk_level());
  mix(universe.permissions().size());
  mix(universe.intents().size());
  mix(universe.config().seed);
  return h;
}

std::string LocalFarmBackend::describe() const {
  return util::StrFormat("local farm %u (%zu emulators)", farm_.config().farm_id,
                         farm_.config().num_emulators);
}

}  // namespace apichecker::fabric
