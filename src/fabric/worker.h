// FarmWorker: the server side of the fabric — wraps one emu::DeviceFarm plus
// a per-connection serving model (shipped over the wire by the client) and
// answers Hello/Ping/SetModel/RunBatch frames. Runs inside the `apichecker
// farm` CLI subcommand as its own process: the independently restartable
// emulator-farm tier of the paper's deployment.
//
// Connection handling is readiness-driven on a small private rt::Runtime:
// the listener fd and every connection fd carry PostFd watches, each
// connection's frames are decoded by a streaming FrameAssembler and handled
// on a per-connection strand (serialized, so the per-connection model state
// needs no lock), and an idle fleet costs zero parked threads — worker
// thread count is O(rt_threads), not O(connections). A RunBatch occupies an
// executor worker for the emulation's duration; rt_threads is floored so
// heartbeat pings on the second channel never starve behind it.
//
// Error model: any protocol violation on a connection (undecodable frame,
// bad handshake, unexpected message) disconnects that peer and counts a
// metric; the worker itself never crashes on hostile input and keeps
// accepting new connections.

#ifndef APICHECKER_FABRIC_WORKER_H_
#define APICHECKER_FABRIC_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "android/api_universe.h"
#include "core/checker.h"
#include "emu/farm.h"
#include "fabric/transport.h"
#include "rt/runtime.h"
#include "util/result.h"

namespace apichecker::fabric {

struct FarmWorkerConfig {
  std::string endpoint;  // Listen address, "unix:/path" or "tcp:host:port".
  emu::FarmConfig farm;
  uint32_t worker_id = 0;
  // Executor threads for the worker's private runtime; 0 selects
  // max(4, hardware_concurrency) — enough headroom that a blocking RunBatch
  // on the rpc channel never delays a ping on the heartbeat channel.
  size_t rt_threads = 0;
};

class FarmWorker {
 public:
  FarmWorker(const android::ApiUniverse& universe, FarmWorkerConfig config);
  ~FarmWorker();

  // Binds the endpoint and arms the accept watch on the private runtime.
  // Returns the bound endpoint (meaningful for tcp:host:0) on success.
  util::Result<Endpoint> Start();

  // Closes the listener, severs live connections, shuts the private runtime
  // down (draining in-flight tasks). Idempotent; concurrent callers block
  // until the first teardown completes.
  void Stop();

  // Blocks until Stop() is called (from a signal handler path or another
  // thread). The CLI subcommand's main thread parks here.
  void Wait();

  const Endpoint& bound_endpoint() const { return bound_endpoint_; }
  uint64_t batches_served() const { return batches_served_.load(std::memory_order_relaxed); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  // Per-connection state machine. All fields are touched only on the
  // connection's strand; the socket is additionally ShutdownBoth() from
  // Stop(), which is safe against a concurrent read/send (that is the
  // documented way to wake one).
  struct Conn : std::enable_shared_from_this<Conn> {
    Socket socket;
    FrameAssembler assembler;
    std::shared_ptr<rt::Strand> strand;
    rt::CancelToken read_watch;
    bool hello_done = false;
    bool done = false;
    // Per-connection serving model: shipped by the client, versioned so
    // re-sends only happen on model evolution or reconnect.
    std::optional<core::ApiChecker> checker;
    emu::TrackedApiSet tracked;
    uint32_t model_version = UINT32_MAX;
  };

  void ArmAccept();
  void OnAcceptReady();
  void ArmRead(const std::shared_ptr<Conn>& conn);
  void OnConnReadable(const std::shared_ptr<Conn>& conn);
  // Handles one decoded frame; false means "drop the connection".
  bool HandleFrame(Conn& conn, const Frame& frame);
  // Removes the connection from the live set and cancels its watch.
  void DropConn(const std::shared_ptr<Conn>& conn);

  const android::ApiUniverse& universe_;
  FarmWorkerConfig config_;
  emu::DeviceFarm farm_;
  uint64_t universe_checksum_ = 0;

  std::unique_ptr<rt::Runtime> runtime_;
  Listener listener_;
  Endpoint bound_endpoint_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  // Accept-watch token and its closed latch live under conns_mu_: the
  // re-arm (rt worker thread) and Stop()'s cancel (caller thread) otherwise
  // race on the token object itself.
  rt::CancelToken accept_watch_;
  bool accept_closed_ = false;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool stopped_ = false;

  std::atomic<uint64_t> batches_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_WORKER_H_
