// FarmWorker: the server side of the fabric — wraps one emu::DeviceFarm plus
// a per-connection serving model (shipped over the wire by the client) and
// answers Hello/Ping/SetModel/RunBatch frames. Runs inside the `apichecker
// farm` CLI subcommand as its own process: the independently restartable
// emulator-farm tier of the paper's deployment.
//
// Error model: any protocol violation on a connection (undecodable frame,
// bad handshake, unexpected message) disconnects that peer and counts a
// metric; the worker itself never crashes on hostile input and keeps
// accepting new connections.

#ifndef APICHECKER_FABRIC_WORKER_H_
#define APICHECKER_FABRIC_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "android/api_universe.h"
#include "emu/farm.h"
#include "fabric/transport.h"
#include "util/result.h"

namespace apichecker::fabric {

struct FarmWorkerConfig {
  std::string endpoint;  // Listen address, "unix:/path" or "tcp:host:port".
  emu::FarmConfig farm;
  uint32_t worker_id = 0;
};

class FarmWorker {
 public:
  FarmWorker(const android::ApiUniverse& universe, FarmWorkerConfig config);
  ~FarmWorker();

  // Binds the endpoint and starts the accept thread. Returns the bound
  // endpoint (meaningful for tcp:host:0) on success.
  util::Result<Endpoint> Start();

  // Closes the listener, severs live connections, joins all threads.
  void Stop();

  // Blocks until Stop() is called (from a signal handler path or another
  // thread). The CLI subcommand's main thread parks here.
  void Wait();

  const Endpoint& bound_endpoint() const { return bound_endpoint_; }
  uint64_t batches_served() const { return batches_served_.load(std::memory_order_relaxed); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  // The socket stays in the slot (the serve thread borrows it) so Stop() can
  // ShutdownBoth() a connection that is blocked mid-read.
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  // Reaps finished connection threads; called with conns_mu_ held.
  void ReapLocked();

  const android::ApiUniverse& universe_;
  FarmWorkerConfig config_;
  emu::DeviceFarm farm_;
  uint64_t universe_checksum_ = 0;

  Listener listener_;
  Endpoint bound_endpoint_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  bool stopped_ = false;

  std::atomic<uint64_t> batches_served_{0};
  std::atomic<uint64_t> connections_accepted_{0};
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_WORKER_H_
