#include "fabric/remote_client.h"

#include <unistd.h>

#include <utility>

#include "core/model_store.h"
#include "fabric/messages.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/strings.h"

namespace apichecker::fabric {

namespace {

using MillisDouble = std::chrono::duration<double, std::milli>;

}  // namespace

RemoteFarmClient::RemoteFarmClient(const android::ApiUniverse& universe,
                                   RemoteClientConfig config, rt::Runtime* runtime)
    : universe_(universe),
      config_(std::move(config)),
      universe_checksum_(UniverseChecksum(universe)),
      backoff_(config_.reconnect_backoff_min) {
  auto endpoint = ParseEndpoint(config_.endpoint);
  if (endpoint.ok()) {
    endpoint_ = *endpoint;
  } else {
    // A malformed endpoint leaves the client permanently disconnected; every
    // batch fails over and the breaker opens — same shape as a worker that
    // never comes up, and visible in describe().
    endpoint_.kind = EndpointKind::kUnix;
    endpoint_.path = "";
  }
  if (runtime == nullptr) {
    // Standalone construction (tests): one worker carries the serialized
    // tick chain.
    owned_runtime_ = std::make_unique<rt::Runtime>(rt::RuntimeOptions{1});
    runtime = owned_runtime_.get();
  }
  rt_ = runtime;
  ScheduleTick(std::chrono::milliseconds(0));
}

RemoteFarmClient::~RemoteFarmClient() { StopMonitor(); }

void RemoteFarmClient::SetHealthListener(HealthListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  listener_ = std::move(listener);
}

void RemoteFarmClient::ScheduleTick(std::chrono::milliseconds delay) {
  if (stop_.load(std::memory_order_acquire)) {
    return;
  }
  // Count BEFORE arming, so StopMonitor never observes an armed timer it is
  // not waiting for.
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    ++pending_ticks_;
  }
  rt::CancelToken token = rt_->PostAfter(delay, [this] { Tick(); });
  bool settle = false;
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    tick_timer_ = token;
    if (stop_.load(std::memory_order_acquire)) {
      // StopMonitor raced the arm and may have missed this token: settle the
      // count ourselves. An already-fired token runs Tick, which settles it.
      if (!token.valid() || token.Cancel()) {
        --pending_ticks_;
        settle = true;
      }
    } else if (!token.valid()) {
      // Runtime already stopping: the task was dropped, never to run.
      --pending_ticks_;
      settle = true;
    }
  }
  if (settle) {
    tick_cv_.notify_all();
  }
}

void RemoteFarmClient::Tick() {
  if (!stop_.load(std::memory_order_acquire)) {
    std::shared_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn = conn_;
    }
    if (conn && !conn->broken.load(std::memory_order_acquire)) {
      HeartbeatStep(conn);
    } else {
      ConnectStep();
    }
  }
  // The successor tick (if any) was counted by the step above, so this
  // decrement can only reach zero when the chain truly ends.
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    --pending_ticks_;
  }
  tick_cv_.notify_all();
}

void RemoteFarmClient::StopMonitor() {
  bool expected = false;
  if (stop_.compare_exchange_strong(expected, true)) {
    // Cancel the armed tick; an in-flight one is drained below.
    bool settled = false;
    {
      std::lock_guard<std::mutex> lock(tick_mu_);
      if (tick_timer_.valid() && tick_timer_.Cancel()) {
        --pending_ticks_;
        settled = true;
      }
    }
    if (settled) {
      tick_cv_.notify_all();
    }
    std::shared_ptr<Conn> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conn = conn_;
      conn_.reset();
      listener_ = nullptr;
    }
    if (conn) conn->Break();  // Wakes a tick blocked in ping/pong recv.
  }
  // Every caller (first or repeated) blocks until no tick is scheduled or
  // executing — the "no listener after return" contract.
  {
    std::unique_lock<std::mutex> lock(tick_mu_);
    tick_cv_.wait(lock, [this] { return pending_ticks_ == 0; });
  }
  if (owned_runtime_ != nullptr) {
    owned_runtime_->Shutdown();
  }
}

std::string RemoteFarmClient::describe() const {
  return util::StrFormat("remote farm %u @ %s%s", config_.farm_id,
                         config_.endpoint.c_str(), connected() ? "" : " (disconnected)");
}

bool RemoteFarmClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_ != nullptr && !conn_->broken.load(std::memory_order_acquire);
}


util::Result<Socket> RemoteFarmClient::OpenChannel(Channel channel, std::string* error) {
  auto socket = Socket::Connect(endpoint_, config_.connect_timeout);
  if (!socket.ok()) {
    *error = socket.error();
    return util::Err(socket.error());
  }
  socket->SetSendTimeout(config_.connect_timeout);
  socket->SetRecvTimeout(config_.connect_timeout);
  Hello hello;
  hello.channel = channel;
  hello.farm_id = config_.farm_id;
  hello.universe_checksum = universe_checksum_;
  hello.client_name = util::StrFormat("farm-pool/%d", static_cast<int>(::getpid()));
  auto sent = socket->SendFrame(MsgType::kHello, EncodeHello(hello));
  if (!sent.ok()) {
    *error = "handshake send: " + sent.error();
    return util::Err(*error);
  }
  auto frame = socket->RecvFrame();
  if (!frame.ok()) {
    *error = "handshake recv: " + frame.error();
    return util::Err(*error);
  }
  if (frame->type == MsgType::kError) {
    auto err = DecodeError(frame->payload);
    *error = "worker rejected handshake: " + (err.ok() ? err->message : "malformed error");
    return util::Err(*error);
  }
  if (frame->type != MsgType::kHelloAck) {
    *error = util::StrFormat("handshake: unexpected %s frame", MsgTypeName(frame->type));
    return util::Err(*error);
  }
  auto ack = DecodeHelloAck(frame->payload);
  if (!ack.ok()) {
    *error = "handshake: malformed hello_ack: " + ack.error();
    return util::Err(*error);
  }
  if (ack->universe_checksum != universe_checksum_) {
    *error = util::StrFormat("universe mismatch: ours %016llx, worker %016llx",
                             static_cast<unsigned long long>(universe_checksum_),
                             static_cast<unsigned long long>(ack->universe_checksum));
    return util::Err(*error);
  }
  return std::move(*socket);
}

std::shared_ptr<RemoteFarmClient::Conn> RemoteFarmClient::TryConnect(std::string* error) {
  auto& registry = obs::MetricsRegistry::Default();
  auto conn = std::make_shared<Conn>();
  auto rpc = OpenChannel(Channel::kRpc, error);
  if (!rpc.ok()) {
    registry.counter(obs::names::kFabricHandshakeFailuresTotal).Increment();
    return nullptr;
  }
  auto heartbeat = OpenChannel(Channel::kHeartbeat, error);
  if (!heartbeat.ok()) {
    registry.counter(obs::names::kFabricHandshakeFailuresTotal).Increment();
    return nullptr;
  }
  conn->rpc = std::move(*rpc);
  conn->heartbeat = std::move(*heartbeat);
  conn->rpc.SetSendTimeout(config_.rpc_timeout);
  conn->rpc.SetRecvTimeout(config_.rpc_timeout);
  conn->heartbeat.SetSendTimeout(config_.heartbeat_interval);
  // The pong wait is the liveness bound: miss_threshold unanswered intervals
  // and the connection is declared dead.
  const auto pong_timeout =
      config_.heartbeat_interval * std::max<uint32_t>(1, config_.heartbeat_miss_threshold);
  conn->heartbeat.SetRecvTimeout(pong_timeout);
  registry.counter(obs::names::kFabricHandshakesTotal).Increment(2);
  return conn;
}

void RemoteFarmClient::MarkLost(const std::shared_ptr<Conn>& conn, const std::string& reason) {
  conn->Break();
  HealthListener listener;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn_ == conn) conn_.reset();
    if (!lost_reported_) {
      lost_reported_ = true;
      listener = listener_;
    }
  }
  obs::MetricsRegistry::Default().counter(obs::names::kFabricDisconnectsTotal).Increment();
  if (listener) listener(Health::kLost, reason);
}

void RemoteFarmClient::ConnectStep() {
  auto& registry = obs::MetricsRegistry::Default();
  std::string error;
  std::shared_ptr<Conn> conn = TryConnect(&error);
  if (!conn) {
    if (first_attempt_) {
      // Report the initial outage too: a worker that never comes up should
      // open its breaker rather than eat dispatch attempts.
      first_attempt_ = false;
      HealthListener listener;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!lost_reported_) {
          lost_reported_ = true;
          listener = listener_;
        }
      }
      if (listener) listener(Health::kLost, "connect failed: " + error);
    }
    ScheduleTick(backoff_);
    backoff_ = std::min(backoff_ * 2, config_.reconnect_backoff_max);
    return;
  }
  first_attempt_ = false;
  backoff_ = config_.reconnect_backoff_min;
  HealthListener listener;
  bool was_lost = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn_ = conn;
    was_lost = lost_reported_;
    lost_reported_ = false;
    listener = listener_;
  }
  if (ever_connected_.exchange(true)) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    registry.counter(obs::names::kFabricReconnectsTotal).Increment();
  }
  if (was_lost && listener) listener(Health::kRestored, "reconnected");
  // First heartbeat immediately: liveness is established by ping, not by the
  // handshake alone.
  ScheduleTick(std::chrono::milliseconds(0));
}

void RemoteFarmClient::HeartbeatStep(const std::shared_ptr<Conn>& conn) {
  auto& registry = obs::MetricsRegistry::Default();
  const auto ping_start = std::chrono::steady_clock::now();
  auto sent = conn->heartbeat.SendFrame(MsgType::kPing, EncodePing({.seq = ++ping_seq_}));
  if (!sent.ok()) {
    registry.counter(obs::names::kFabricHeartbeatMissesTotal).Increment();
    MarkLost(conn, "heartbeat send failed: " + sent.error());
    ScheduleTick(std::chrono::milliseconds(0));  // Straight to reconnect.
    return;
  }
  auto pong = conn->heartbeat.RecvFrame();
  if (!pong.ok() || pong->type != MsgType::kPong) {
    registry.counter(obs::names::kFabricHeartbeatMissesTotal).Increment();
    MarkLost(conn, !pong.ok() ? "heartbeat miss: " + pong.error()
                              : "heartbeat: unexpected frame");
    ScheduleTick(std::chrono::milliseconds(0));
    return;
  }
  registry.counter(obs::names::kFabricHeartbeatsTotal).Increment();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - ping_start);
  ScheduleTick(elapsed < config_.heartbeat_interval
                   ? config_.heartbeat_interval - elapsed
                   : std::chrono::milliseconds(0));
}

emu::BatchResult RemoteFarmClient::TransportFault(const std::shared_ptr<Conn>& conn,
                                                  std::string reason) {
  if (conn) MarkLost(conn, reason);
  emu::BatchResult result;
  result.farm_fault = true;
  result.transport_fault = true;
  result.fault_reason = std::move(reason);
  return result;
}

emu::BatchResult RemoteFarmClient::ExecuteBatch(std::span<const apk::ApkFile> apks,
                                                uint32_t model_version,
                                                const core::ApiChecker& checker,
                                                const emu::TrackedApiSet& tracked) {
  (void)tracked;  // The worker derives its own hook set from the shipped model.
  std::shared_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn = conn_;
  }
  if (!conn || conn->broken.load(std::memory_order_acquire)) {
    return TransportFault(nullptr,
                          util::StrFormat("fabric: farm %u not connected (%s)",
                                          config_.farm_id, config_.endpoint.c_str()));
  }
  auto& registry = obs::MetricsRegistry::Default();
  const auto rpc_start = std::chrono::steady_clock::now();

  // Model sync: ship the checker when this connection hasn't seen this
  // snapshot version yet (first batch after connect/reconnect, or a model
  // evolution rollover).
  if (conn->model_version_sent != model_version) {
    SetModel set_model;
    set_model.model_version = model_version;
    set_model.blob = core::SerializeChecker(checker);
    if (set_model.blob.empty()) {
      return TransportFault(conn, "fabric: serving checker not trained");
    }
    auto sent = conn->rpc.SendFrame(MsgType::kSetModel, EncodeSetModel(set_model));
    if (!sent.ok()) return TransportFault(conn, "fabric: set_model send: " + sent.error());
    auto ack_frame = conn->rpc.RecvFrame();
    if (!ack_frame.ok()) {
      return TransportFault(conn, "fabric: set_model recv: " + ack_frame.error());
    }
    if (ack_frame->type != MsgType::kSetModelAck) {
      std::string detail = "unexpected frame";
      if (ack_frame->type == MsgType::kError) {
        auto err = DecodeError(ack_frame->payload);
        if (err.ok()) detail = err->message;
      }
      return TransportFault(conn, "fabric: set_model rejected: " + detail);
    }
    conn->model_version_sent = model_version;
    registry.counter(obs::names::kFabricModelSyncsTotal).Increment();
  }

  RunBatchRequest request;
  request.model_version = model_version;
  request.apks.reserve(apks.size());
  for (const auto& apk : apks) {
    request.apks.push_back(apk::BuildApk(apk.manifest, apk.dex, apk.has_native_lib));
  }
  auto sent = conn->rpc.SendFrame(MsgType::kRunBatch, EncodeRunBatch(request));
  if (!sent.ok()) return TransportFault(conn, "fabric: run_batch send: " + sent.error());
  auto frame = conn->rpc.RecvFrame();
  if (!frame.ok()) return TransportFault(conn, "fabric: run_batch recv: " + frame.error());
  if (frame->type == MsgType::kError) {
    auto err = DecodeError(frame->payload);
    // An application-level error from the worker (e.g. an APK its parser
    // rejected) is a farm fault but NOT a transport fault: the connection is
    // intact and the breaker should treat it like a local farm failure.
    emu::BatchResult result;
    result.farm_fault = true;
    result.fault_reason =
        "fabric: worker error: " + (err.ok() ? err->message : "malformed error frame");
    return result;
  }
  if (frame->type != MsgType::kBatchResult) {
    return TransportFault(conn, util::StrFormat("fabric: unexpected %s frame",
                                                MsgTypeName(frame->type)));
  }
  auto result = DecodeBatchResult(frame->payload);
  if (!result.ok()) {
    return TransportFault(conn, "fabric: malformed batch_result: " + result.error());
  }
  if (result->reports.size() != apks.size() && !result->farm_fault) {
    return TransportFault(conn,
                          util::StrFormat("fabric: report count mismatch: sent %zu, got %zu",
                                          apks.size(), result->reports.size()));
  }
  const double rpc_ms =
      MillisDouble(std::chrono::steady_clock::now() - rpc_start).count();
  last_rpc_ms_.store(rpc_ms, std::memory_order_relaxed);
  registry.histogram(obs::names::kFabricRpcMs).Observe(rpc_ms);
  return std::move(*result);
}

}  // namespace apichecker::fabric
