#include "fabric/wire.h"

#include "obs/labels.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/byte_io.h"
#include "util/crc32.h"

namespace apichecker::fabric {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kHelloAck:
      return "hello_ack";
    case MsgType::kPing:
      return "ping";
    case MsgType::kPong:
      return "pong";
    case MsgType::kSetModel:
      return "set_model";
    case MsgType::kSetModelAck:
      return "set_model_ack";
    case MsgType::kRunBatch:
      return "run_batch";
    case MsgType::kBatchResult:
      return "batch_result";
    case MsgType::kError:
      return "error";
    case MsgType::kUploadOpen:
      return "upload_open";
    case MsgType::kUploadAck:
      return "upload_ack";
    case MsgType::kUploadChunk:
      return "upload_chunk";
    case MsgType::kUploadEnd:
      return "upload_end";
    case MsgType::kUploadVerdict:
      return "upload_verdict";
  }
  return "unknown";
}

const char* DecodeStatusName(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kBadMagic:
      return "bad_magic";
    case DecodeStatus::kBadVersion:
      return "bad_version";
    case DecodeStatus::kOversized:
      return "oversized";
    case DecodeStatus::kCrcMismatch:
      return "crc_mismatch";
  }
  return "unknown";
}

namespace {

// CRC covers everything after the magic: version, type, payload_len, payload.
// A flipped bit in the length field therefore fails the checksum even when
// the mangled length happens to describe a readable frame.
uint32_t FrameCrc(uint16_t version, uint16_t type, std::span<const uint8_t> payload) {
  util::ByteWriter header;
  header.PutU16(version);
  header.PutU16(type);
  header.PutU32(static_cast<uint32_t>(payload.size()));
  uint32_t state = util::Crc32Init();
  state = util::Crc32Update(state, header.bytes());
  state = util::Crc32Update(state, payload);
  return util::Crc32Final(state);
}

}  // namespace

std::vector<uint8_t> EncodeFrame(MsgType type, std::span<const uint8_t> payload) {
  util::ByteWriter out;
  out.PutU32(kFrameMagic);
  out.PutU16(kProtocolVersion);
  out.PutU16(static_cast<uint16_t>(type));
  out.PutU32(static_cast<uint32_t>(payload.size()));
  out.PutBytes(payload);
  out.PutU32(FrameCrc(kProtocolVersion, static_cast<uint16_t>(type), payload));
  return std::move(out).TakeBytes();
}

DecodeResult DecodeFrame(std::span<const uint8_t> bytes) {
  DecodeResult result;
  if (bytes.size() < kFrameHeaderBytes) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  util::ByteReader reader(bytes);
  // Header reads cannot fail: size was checked above.
  const uint32_t magic = *reader.ReadU32();
  const uint16_t version = *reader.ReadU16();
  const uint16_t type = *reader.ReadU16();
  const uint32_t payload_len = *reader.ReadU32();
  if (magic != kFrameMagic) {
    result.status = DecodeStatus::kBadMagic;
    return result;
  }
  // Length sanity comes before the version check: a hostile frame can claim
  // any version, but an insane length must never drive the read loop to wait
  // for (or allocate) gigabytes regardless of claimed version.
  if (payload_len > kMaxFramePayload) {
    result.status = DecodeStatus::kOversized;
    return result;
  }
  const size_t total = kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
  if (bytes.size() < total) {
    result.status = DecodeStatus::kTruncated;
    return result;
  }
  std::span<const uint8_t> payload = bytes.subspan(kFrameHeaderBytes, payload_len);
  util::ByteReader trailer(bytes.subspan(kFrameHeaderBytes + payload_len, kFrameTrailerBytes));
  const uint32_t stored_crc = *trailer.ReadU32();
  if (stored_crc != FrameCrc(version, type, payload)) {
    result.status = DecodeStatus::kCrcMismatch;
    return result;
  }
  // CRC before version: a version-mismatch report is only meaningful for a
  // frame that arrived intact.
  if (version != kProtocolVersion) {
    result.status = DecodeStatus::kBadVersion;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.frame.version = version;
  result.frame.type = static_cast<MsgType>(type);
  result.frame.payload.assign(payload.begin(), payload.end());
  result.consumed = total;
  return result;
}

void CountProtocolError(DecodeStatus status) {
  if (status == DecodeStatus::kOk) return;
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kFabricProtocolErrorsTotal).Increment();
  registry
      .counter(obs::LabeledSeriesName(obs::names::kFabricProtocolErrorsTotal, "kind",
                                      DecodeStatusName(status)))
      .Increment();
}

}  // namespace apichecker::fabric
