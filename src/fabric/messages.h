// Payload codecs for the fabric frame types. Each message has an Encode
// returning raw payload bytes (to wrap in EncodeFrame) and a Result-returning
// Decode that treats the payload as hostile: element counts are never trusted
// for allocation beyond the bytes actually present, and any truncation or
// malformed field is an error, not UB.

#ifndef APICHECKER_FABRIC_MESSAGES_H_
#define APICHECKER_FABRIC_MESSAGES_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "emu/farm.h"
#include "util/result.h"

namespace apichecker::fabric {

// Which logical channel a connection carries. Batch RPCs can run for the
// length of a whole emulation batch, so heartbeats get their own connection —
// a ping must not queue behind a 30-second RunBatch.
enum class Channel : uint8_t {
  kRpc = 0,
  kHeartbeat = 1,
};

struct Hello {
  Channel channel = Channel::kRpc;
  uint32_t farm_id = 0;
  // Fingerprint of the API universe both sides must agree on; emulation
  // reports are meaningless across different universes.
  uint64_t universe_checksum = 0;
  std::string client_name;
};

struct HelloAck {
  uint32_t worker_id = 0;
  uint32_t pid = 0;
  uint64_t universe_checksum = 0;
};

struct Ping {
  uint64_t seq = 0;
};

struct SetModel {
  uint32_t model_version = 0;
  std::vector<uint8_t> blob;  // core::SerializeChecker output.
};

struct SetModelAck {
  uint32_t model_version = 0;
  uint32_t tracked_count = 0;
};

struct RunBatchRequest {
  uint32_t model_version = 0;
  // APK container bytes, one per app; the worker re-parses each through the
  // hostile-hardened apk::ParseApk.
  std::vector<std::vector<uint8_t>> apks;
};

struct ErrorMsg {
  std::string message;
};

std::vector<uint8_t> EncodeHello(const Hello& msg);
util::Result<Hello> DecodeHello(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeHelloAck(const HelloAck& msg);
util::Result<HelloAck> DecodeHelloAck(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodePing(const Ping& msg);
util::Result<Ping> DecodePing(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeSetModel(const SetModel& msg);
util::Result<SetModel> DecodeSetModel(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeSetModelAck(const SetModelAck& msg);
util::Result<SetModelAck> DecodeSetModelAck(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeRunBatch(const RunBatchRequest& msg);
util::Result<RunBatchRequest> DecodeRunBatch(std::span<const uint8_t> payload);

// The full emu::BatchResult, including every EmulationReport field, crosses
// the wire so a remote batch is indistinguishable from a local one to the
// FarmPool and the batch scheduler's classify/store stages.
std::vector<uint8_t> EncodeBatchResult(const emu::BatchResult& result);
util::Result<emu::BatchResult> DecodeBatchResult(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeError(const ErrorMsg& msg);
util::Result<ErrorMsg> DecodeError(std::span<const uint8_t> payload);

// ---------------------------------------------------------------------------
// Ingest-gateway upload protocol. Priority and status fields travel as raw
// bytes so the fabric layer stays independent of serve's enums; the gateway
// (which links both) converts and range-checks at its boundary.

struct UploadOpen {
  uint64_t declared_length = 0;  // Body bytes the client promises to send.
  // SHA-1 hex digest when the client already knows it (retry/resume path);
  // empty on a first-contact upload. A known digest lets the gateway answer
  // from the verdict cache before any body byte arrives.
  std::string digest_hint;
  uint8_t priority = 2;  // serve::Priority value (0 interactive .. 2 bulk).
  std::string client_name;
};

// Gateway's answer to UploadOpen: either "send the body" or a terminal
// verdict (digest-cache hit, or an overload shed) that ends the upload before
// the body is transferred.
struct UploadVerdictMsg {
  uint8_t status = 0;  // serve::VetStatus value.
  bool malicious = false;
  bool from_cache = false;
  double score = 0.0;
  uint32_t model_version = 0;
  std::string error;
};

enum class UploadDecision : uint8_t {
  kGo = 0,       // Stream the body.
  kVerdict = 1,  // `verdict` is terminal; the connection is done.
};

struct UploadAck {
  UploadDecision decision = UploadDecision::kGo;
  uint64_t max_chunk_bytes = 0;  // Gateway's per-chunk ceiling (advisory).
  UploadVerdictMsg verdict;      // Meaningful only when decision == kVerdict.
};

struct UploadChunk {
  uint32_t seq = 0;  // 1-based chunk ordinal; must arrive in order.
  std::vector<uint8_t> bytes;
};

struct UploadEnd {
  // Total body bytes the client believes it sent; the gateway enforces
  // sent_length == declared_length == bytes actually received.
  uint64_t sent_length = 0;
};

std::vector<uint8_t> EncodeUploadOpen(const UploadOpen& msg);
util::Result<UploadOpen> DecodeUploadOpen(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeUploadAck(const UploadAck& msg);
util::Result<UploadAck> DecodeUploadAck(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeUploadChunk(const UploadChunk& msg);
util::Result<UploadChunk> DecodeUploadChunk(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeUploadEnd(const UploadEnd& msg);
util::Result<UploadEnd> DecodeUploadEnd(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeUploadVerdict(const UploadVerdictMsg& msg);
util::Result<UploadVerdictMsg> DecodeUploadVerdict(std::span<const uint8_t> payload);

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_MESSAGES_H_
