// Wire framing for the cross-process farm fabric. Every message between the
// vetting front-end and an `apichecker farm` worker travels as one frame:
//
//   u32  magic        'FAB1' (0x31424146 little-endian on disk/wire)
//   u16  version      protocol version (handshake rejects a mismatch)
//   u16  type         MsgType
//   u32  payload_len  bytes of payload that follow (bounded, hostile-safe)
//   ...  payload
//   u32  crc          CRC-32 (util::Crc32) of version|type|payload_len|payload
//
// The codec is hostile-input safe in the same way the ZIP reader is: a
// truncated header, an oversized declared length, a bad magic, a CRC
// mismatch, or a version mismatch is a typed decode failure — the peer that
// sent it gets disconnected and counted, never crashed on. The CRC covers
// the header fields after the magic so a frame whose length field was
// corrupted in flight cannot smuggle a valid-looking payload.

#ifndef APICHECKER_FABRIC_WIRE_H_
#define APICHECKER_FABRIC_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace apichecker::fabric {

inline constexpr uint32_t kFrameMagic = 0x31424146u;  // "FAB1"
inline constexpr uint16_t kProtocolVersion = 1;
// Frame header bytes before the payload (magic + version + type + len).
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr size_t kFrameTrailerBytes = 4;  // CRC.
// Upper bound on one payload: a corrupt or malicious length field must not
// drive a huge allocation. Batches of market-sized APKs fit comfortably.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class MsgType : uint16_t {
  kHello = 1,        // Client -> worker: open a channel (rpc or heartbeat).
  kHelloAck = 2,     // Worker -> client: channel accepted.
  kPing = 3,         // Heartbeat probe (client -> worker).
  kPong = 4,         // Heartbeat echo (worker -> client).
  kSetModel = 5,     // Ship the serving model blob to the worker.
  kSetModelAck = 6,  // Model restored; tracked hook set derived.
  kRunBatch = 7,     // Execute a batch of APKs.
  kBatchResult = 8,  // Emulation reports for a kRunBatch.
  kError = 9,        // Application-level failure (string payload).
  // Ingest gateway: framed APK upload (client -> gateway unless noted).
  kUploadOpen = 10,     // Declare an upload (length, digest hint, priority).
  kUploadAck = 11,      // Gateway -> client: go-ahead, or an early verdict.
  kUploadChunk = 12,    // One chunk of APK body bytes.
  kUploadEnd = 13,      // Body complete; declared-length contract check.
  kUploadVerdict = 14,  // Gateway -> client: terminal vetting result.
};

const char* MsgTypeName(MsgType type);

struct Frame {
  uint16_t version = kProtocolVersion;
  MsgType type = MsgType::kError;
  std::vector<uint8_t> payload;
};

// Serializes one frame (header + payload + CRC).
std::vector<uint8_t> EncodeFrame(MsgType type, std::span<const uint8_t> payload);

// Typed decode failure, used both as the disconnect reason and as the `kind`
// label on apichecker_fabric_protocol_errors_total.
enum class DecodeStatus : uint8_t {
  kOk = 0,
  kTruncated = 1,     // Fewer bytes than the header + declared payload + CRC.
  kBadMagic = 2,
  kBadVersion = 3,    // Protocol version this build does not speak.
  kOversized = 4,     // Declared payload length exceeds kMaxFramePayload.
  kCrcMismatch = 5,
};

const char* DecodeStatusName(DecodeStatus status);

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kTruncated;
  Frame frame;          // Valid only when status == kOk.
  size_t consumed = 0;  // Bytes the frame occupied when status == kOk.
};

// Decodes the frame at the front of `bytes`. kTruncated means "not enough
// bytes yet" for a streaming caller — over a blocking socket it means the
// peer died mid-frame.
DecodeResult DecodeFrame(std::span<const uint8_t> bytes);

// Increments apichecker_fabric_protocol_errors_total and its kind-labeled
// variant; every decode-failure path funnels through here so the counter and
// the disconnect policy cannot drift apart.
void CountProtocolError(DecodeStatus status);

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_WIRE_H_
