#include "fabric/messages.h"

#include <bit>

#include "util/byte_io.h"

namespace apichecker::fabric {

namespace {

// Doubles cross the wire as their IEEE-754 bit pattern. Both ends of the
// fabric are the same binary family (x86-64 Linux), so bit-exactness holds —
// which the local/remote parity tests rely on.
void PutF64(util::ByteWriter& out, double v) { out.PutU64(std::bit_cast<uint64_t>(v)); }

util::Result<double> ReadF64(util::ByteReader& in) {
  auto bits = in.ReadU64();
  if (!bits.ok()) return util::Err(bits.error());
  return std::bit_cast<double>(*bits);
}

// Reads a u32 element count that is about to drive a decode loop. The count
// itself is untrusted: it is only accepted when the remaining payload could
// plausibly hold that many elements at `min_element_bytes` apiece, so a
// hostile count cannot drive a giant reserve() before the per-element reads
// start failing.
util::Result<uint32_t> ReadCount(util::ByteReader& in, size_t min_element_bytes) {
  auto count = in.ReadU32();
  if (!count.ok()) return util::Err(count.error());
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (*count > in.remaining() / min_element_bytes) {
    return util::Err("element count exceeds payload");
  }
  return *count;
}

void PutStringVec(util::ByteWriter& out, const std::vector<std::string>& v) {
  out.PutU32(static_cast<uint32_t>(v.size()));
  for (const auto& s : v) out.PutString(s);
}

util::Result<std::vector<std::string>> ReadStringVec(util::ByteReader& in) {
  auto count = ReadCount(in, 1);
  if (!count.ok()) return util::Err(count.error());
  std::vector<std::string> v;
  v.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto s = in.ReadString();
    if (!s.ok()) return util::Err(s.error());
    v.push_back(std::move(*s));
  }
  return v;
}

void PutU32Vec(util::ByteWriter& out, const std::vector<uint32_t>& v) {
  out.PutU32(static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) out.PutU32(x);
}

util::Result<std::vector<uint32_t>> ReadU32Vec(util::ByteReader& in) {
  auto count = ReadCount(in, 4);
  if (!count.ok()) return util::Err(count.error());
  std::vector<uint32_t> v;
  v.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto x = in.ReadU32();
    if (!x.ok()) return util::Err(x.error());
    v.push_back(*x);
  }
  return v;
}

void PutBlob(util::ByteWriter& out, std::span<const uint8_t> blob) {
  out.PutU32(static_cast<uint32_t>(blob.size()));
  out.PutBytes(blob);
}

util::Result<std::vector<uint8_t>> ReadBlob(util::ByteReader& in) {
  auto len = in.ReadU32();
  if (!len.ok()) return util::Err(len.error());
  if (*len > in.remaining()) return util::Err("blob length exceeds payload");
  return in.ReadBytes(*len);
}

void PutReport(util::ByteWriter& out, const emu::EmulationReport& report) {
  PutU32Vec(out, report.observed_apis);
  PutU32Vec(out, report.observed_api_counts);
  out.PutU32(static_cast<uint32_t>(report.observed_intents.size()));
  for (const auto& intent : report.observed_intents) {
    out.PutString(intent.action);
    out.PutU32(intent.carrier);
  }
  PutStringVec(out, report.requested_permissions);
  PutStringVec(out, report.manifest_intent_filters);
  out.PutU64(report.total_invocations);
  out.PutU64(report.tracked_invocations);
  PutF64(out, report.emulation_minutes);
  PutF64(out, report.rac);
  out.PutU32(report.distinct_apis_invoked);
  uint8_t flags = 0;
  if (report.emulator_detected) flags |= 1u << 0;
  if (report.crashed) flags |= 1u << 1;
  if (report.retried) flags |= 1u << 2;
  if (report.fell_back) flags |= 1u << 3;
  out.PutU8(flags);
}

util::Result<emu::EmulationReport> ReadReport(util::ByteReader& in) {
  emu::EmulationReport report;
  auto apis = ReadU32Vec(in);
  if (!apis.ok()) return util::Err(apis.error());
  report.observed_apis = std::move(*apis);
  auto counts = ReadU32Vec(in);
  if (!counts.ok()) return util::Err(counts.error());
  report.observed_api_counts = std::move(*counts);
  auto intent_count = ReadCount(in, 1);
  if (!intent_count.ok()) return util::Err(intent_count.error());
  report.observed_intents.reserve(*intent_count);
  for (uint32_t i = 0; i < *intent_count; ++i) {
    emu::ObservedIntent intent;
    auto action = in.ReadString();
    if (!action.ok()) return util::Err(action.error());
    intent.action = std::move(*action);
    auto carrier = in.ReadU32();
    if (!carrier.ok()) return util::Err(carrier.error());
    intent.carrier = *carrier;
    report.observed_intents.push_back(std::move(intent));
  }
  auto permissions = ReadStringVec(in);
  if (!permissions.ok()) return util::Err(permissions.error());
  report.requested_permissions = std::move(*permissions);
  auto filters = ReadStringVec(in);
  if (!filters.ok()) return util::Err(filters.error());
  report.manifest_intent_filters = std::move(*filters);
  auto total = in.ReadU64();
  if (!total.ok()) return util::Err(total.error());
  report.total_invocations = *total;
  auto tracked = in.ReadU64();
  if (!tracked.ok()) return util::Err(tracked.error());
  report.tracked_invocations = *tracked;
  auto minutes = ReadF64(in);
  if (!minutes.ok()) return util::Err(minutes.error());
  report.emulation_minutes = *minutes;
  auto rac = ReadF64(in);
  if (!rac.ok()) return util::Err(rac.error());
  report.rac = *rac;
  auto distinct = in.ReadU32();
  if (!distinct.ok()) return util::Err(distinct.error());
  report.distinct_apis_invoked = *distinct;
  auto flags = in.ReadU8();
  if (!flags.ok()) return util::Err(flags.error());
  report.emulator_detected = (*flags & (1u << 0)) != 0;
  report.crashed = (*flags & (1u << 1)) != 0;
  report.retried = (*flags & (1u << 2)) != 0;
  report.fell_back = (*flags & (1u << 3)) != 0;
  return report;
}

}  // namespace

std::vector<uint8_t> EncodeHello(const Hello& msg) {
  util::ByteWriter out;
  out.PutU8(static_cast<uint8_t>(msg.channel));
  out.PutU32(msg.farm_id);
  out.PutU64(msg.universe_checksum);
  out.PutString(msg.client_name);
  return std::move(out).TakeBytes();
}

util::Result<Hello> DecodeHello(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  Hello msg;
  auto channel = in.ReadU8();
  if (!channel.ok()) return util::Err(channel.error());
  if (*channel > static_cast<uint8_t>(Channel::kHeartbeat)) {
    return util::Err("unknown channel");
  }
  msg.channel = static_cast<Channel>(*channel);
  auto farm_id = in.ReadU32();
  if (!farm_id.ok()) return util::Err(farm_id.error());
  msg.farm_id = *farm_id;
  auto checksum = in.ReadU64();
  if (!checksum.ok()) return util::Err(checksum.error());
  msg.universe_checksum = *checksum;
  auto name = in.ReadString();
  if (!name.ok()) return util::Err(name.error());
  msg.client_name = std::move(*name);
  return msg;
}

std::vector<uint8_t> EncodeHelloAck(const HelloAck& msg) {
  util::ByteWriter out;
  out.PutU32(msg.worker_id);
  out.PutU32(msg.pid);
  out.PutU64(msg.universe_checksum);
  return std::move(out).TakeBytes();
}

util::Result<HelloAck> DecodeHelloAck(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  HelloAck msg;
  auto worker_id = in.ReadU32();
  if (!worker_id.ok()) return util::Err(worker_id.error());
  msg.worker_id = *worker_id;
  auto pid = in.ReadU32();
  if (!pid.ok()) return util::Err(pid.error());
  msg.pid = *pid;
  auto checksum = in.ReadU64();
  if (!checksum.ok()) return util::Err(checksum.error());
  msg.universe_checksum = *checksum;
  return msg;
}

std::vector<uint8_t> EncodePing(const Ping& msg) {
  util::ByteWriter out;
  out.PutU64(msg.seq);
  return std::move(out).TakeBytes();
}

util::Result<Ping> DecodePing(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  auto seq = in.ReadU64();
  if (!seq.ok()) return util::Err(seq.error());
  return Ping{.seq = *seq};
}

std::vector<uint8_t> EncodeSetModel(const SetModel& msg) {
  util::ByteWriter out;
  out.PutU32(msg.model_version);
  PutBlob(out, msg.blob);
  return std::move(out).TakeBytes();
}

util::Result<SetModel> DecodeSetModel(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  SetModel msg;
  auto version = in.ReadU32();
  if (!version.ok()) return util::Err(version.error());
  msg.model_version = *version;
  auto blob = ReadBlob(in);
  if (!blob.ok()) return util::Err(blob.error());
  msg.blob = std::move(*blob);
  return msg;
}

std::vector<uint8_t> EncodeSetModelAck(const SetModelAck& msg) {
  util::ByteWriter out;
  out.PutU32(msg.model_version);
  out.PutU32(msg.tracked_count);
  return std::move(out).TakeBytes();
}

util::Result<SetModelAck> DecodeSetModelAck(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  SetModelAck msg;
  auto version = in.ReadU32();
  if (!version.ok()) return util::Err(version.error());
  msg.model_version = *version;
  auto tracked = in.ReadU32();
  if (!tracked.ok()) return util::Err(tracked.error());
  msg.tracked_count = *tracked;
  return msg;
}

std::vector<uint8_t> EncodeRunBatch(const RunBatchRequest& msg) {
  util::ByteWriter out;
  out.PutU32(msg.model_version);
  out.PutU32(static_cast<uint32_t>(msg.apks.size()));
  for (const auto& apk : msg.apks) PutBlob(out, apk);
  return std::move(out).TakeBytes();
}

util::Result<RunBatchRequest> DecodeRunBatch(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  RunBatchRequest msg;
  auto version = in.ReadU32();
  if (!version.ok()) return util::Err(version.error());
  msg.model_version = *version;
  auto count = ReadCount(in, 4);
  if (!count.ok()) return util::Err(count.error());
  msg.apks.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto blob = ReadBlob(in);
    if (!blob.ok()) return util::Err(blob.error());
    msg.apks.push_back(std::move(*blob));
  }
  return msg;
}

std::vector<uint8_t> EncodeBatchResult(const emu::BatchResult& result) {
  util::ByteWriter out;
  out.PutU32(static_cast<uint32_t>(result.reports.size()));
  for (const auto& report : result.reports) PutReport(out, report);
  PutF64(out, result.makespan_minutes);
  PutF64(out, result.total_emulation_minutes);
  out.PutU64(result.crashes);
  out.PutU64(result.fallbacks);
  uint8_t flags = 0;
  if (result.farm_fault) flags |= 1u << 0;
  if (result.transport_fault) flags |= 1u << 1;
  out.PutU8(flags);
  out.PutString(result.fault_reason);
  return std::move(out).TakeBytes();
}

util::Result<emu::BatchResult> DecodeBatchResult(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  emu::BatchResult result;
  auto count = ReadCount(in, 1);
  if (!count.ok()) return util::Err(count.error());
  result.reports.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto report = ReadReport(in);
    if (!report.ok()) return util::Err(report.error());
    result.reports.push_back(std::move(*report));
  }
  auto makespan = ReadF64(in);
  if (!makespan.ok()) return util::Err(makespan.error());
  result.makespan_minutes = *makespan;
  auto total = ReadF64(in);
  if (!total.ok()) return util::Err(total.error());
  result.total_emulation_minutes = *total;
  auto crashes = in.ReadU64();
  if (!crashes.ok()) return util::Err(crashes.error());
  result.crashes = static_cast<size_t>(*crashes);
  auto fallbacks = in.ReadU64();
  if (!fallbacks.ok()) return util::Err(fallbacks.error());
  result.fallbacks = static_cast<size_t>(*fallbacks);
  auto flags = in.ReadU8();
  if (!flags.ok()) return util::Err(flags.error());
  result.farm_fault = (*flags & (1u << 0)) != 0;
  result.transport_fault = (*flags & (1u << 1)) != 0;
  auto reason = in.ReadString();
  if (!reason.ok()) return util::Err(reason.error());
  result.fault_reason = std::move(*reason);
  return result;
}

std::vector<uint8_t> EncodeError(const ErrorMsg& msg) {
  util::ByteWriter out;
  out.PutString(msg.message);
  return std::move(out).TakeBytes();
}

util::Result<ErrorMsg> DecodeError(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  auto message = in.ReadString();
  if (!message.ok()) return util::Err(message.error());
  return ErrorMsg{.message = std::move(*message)};
}

std::vector<uint8_t> EncodeUploadOpen(const UploadOpen& msg) {
  util::ByteWriter out;
  out.PutU64(msg.declared_length);
  out.PutString(msg.digest_hint);
  out.PutU8(msg.priority);
  out.PutString(msg.client_name);
  return std::move(out).TakeBytes();
}

util::Result<UploadOpen> DecodeUploadOpen(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  UploadOpen msg;
  auto length = in.ReadU64();
  if (!length.ok()) return util::Err(length.error());
  msg.declared_length = *length;
  auto digest = in.ReadString();
  if (!digest.ok()) return util::Err(digest.error());
  msg.digest_hint = std::move(*digest);
  auto priority = in.ReadU8();
  if (!priority.ok()) return util::Err(priority.error());
  msg.priority = *priority;
  auto name = in.ReadString();
  if (!name.ok()) return util::Err(name.error());
  msg.client_name = std::move(*name);
  return msg;
}

namespace {

void PutUploadVerdict(util::ByteWriter& out, const UploadVerdictMsg& msg) {
  out.PutU8(msg.status);
  uint8_t flags = 0;
  if (msg.malicious) flags |= 1u << 0;
  if (msg.from_cache) flags |= 1u << 1;
  out.PutU8(flags);
  PutF64(out, msg.score);
  out.PutU32(msg.model_version);
  out.PutString(msg.error);
}

util::Result<UploadVerdictMsg> ReadUploadVerdict(util::ByteReader& in) {
  UploadVerdictMsg msg;
  auto status = in.ReadU8();
  if (!status.ok()) return util::Err(status.error());
  msg.status = *status;
  auto flags = in.ReadU8();
  if (!flags.ok()) return util::Err(flags.error());
  msg.malicious = (*flags & (1u << 0)) != 0;
  msg.from_cache = (*flags & (1u << 1)) != 0;
  auto score = ReadF64(in);
  if (!score.ok()) return util::Err(score.error());
  msg.score = *score;
  auto version = in.ReadU32();
  if (!version.ok()) return util::Err(version.error());
  msg.model_version = *version;
  auto error = in.ReadString();
  if (!error.ok()) return util::Err(error.error());
  msg.error = std::move(*error);
  return msg;
}

}  // namespace

std::vector<uint8_t> EncodeUploadAck(const UploadAck& msg) {
  util::ByteWriter out;
  out.PutU8(static_cast<uint8_t>(msg.decision));
  out.PutU64(msg.max_chunk_bytes);
  PutUploadVerdict(out, msg.verdict);
  return std::move(out).TakeBytes();
}

util::Result<UploadAck> DecodeUploadAck(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  UploadAck msg;
  auto decision = in.ReadU8();
  if (!decision.ok()) return util::Err(decision.error());
  if (*decision > static_cast<uint8_t>(UploadDecision::kVerdict)) {
    return util::Err("unknown upload decision");
  }
  msg.decision = static_cast<UploadDecision>(*decision);
  auto chunk = in.ReadU64();
  if (!chunk.ok()) return util::Err(chunk.error());
  msg.max_chunk_bytes = *chunk;
  auto verdict = ReadUploadVerdict(in);
  if (!verdict.ok()) return util::Err(verdict.error());
  msg.verdict = std::move(*verdict);
  return msg;
}

std::vector<uint8_t> EncodeUploadChunk(const UploadChunk& msg) {
  util::ByteWriter out;
  out.PutU32(msg.seq);
  PutBlob(out, msg.bytes);
  return std::move(out).TakeBytes();
}

util::Result<UploadChunk> DecodeUploadChunk(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  UploadChunk msg;
  auto seq = in.ReadU32();
  if (!seq.ok()) return util::Err(seq.error());
  msg.seq = *seq;
  auto bytes = ReadBlob(in);
  if (!bytes.ok()) return util::Err(bytes.error());
  msg.bytes = std::move(*bytes);
  return msg;
}

std::vector<uint8_t> EncodeUploadEnd(const UploadEnd& msg) {
  util::ByteWriter out;
  out.PutU64(msg.sent_length);
  return std::move(out).TakeBytes();
}

util::Result<UploadEnd> DecodeUploadEnd(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  auto length = in.ReadU64();
  if (!length.ok()) return util::Err(length.error());
  return UploadEnd{.sent_length = *length};
}

std::vector<uint8_t> EncodeUploadVerdict(const UploadVerdictMsg& msg) {
  util::ByteWriter out;
  PutUploadVerdict(out, msg);
  return std::move(out).TakeBytes();
}

util::Result<UploadVerdictMsg> DecodeUploadVerdict(std::span<const uint8_t> payload) {
  util::ByteReader in(payload);
  return ReadUploadVerdict(in);
}

}  // namespace apichecker::fabric
