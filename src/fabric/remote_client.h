// RemoteFarmClient: a FarmBackend that executes batches on an `apichecker
// farm` worker process over the fabric protocol. Two connections per worker:
// an rpc channel (model sync + batch execution; one request in flight at a
// time, matching the pool's per-farm in-flight discipline) and a heartbeat
// channel driven by a monitor thread, so liveness probing never queues
// behind a long-running batch.
//
// Connection-state machine (monitor thread):
//
//   [disconnected] --connect+handshake ok--> [connected]
//        ^  \--fail--> sleep(backoff*2, capped) --retry--/
//        |
//   [connected] --ping miss / EOF / rpc transport error--> Break()
//        \--> listener(kLost) --> [disconnected], backoff reset
//   reconnect success --> listener(kRestored)
//
// The pool maps kLost to "breaker force-open" and kRestored to "probe
// eligible now", which is how a SIGKILLed worker opens its breaker within
// one heartbeat interval and a returning worker re-enters service through
// the existing half-open probe.

#ifndef APICHECKER_FABRIC_REMOTE_CLIENT_H_
#define APICHECKER_FABRIC_REMOTE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "fabric/backend.h"
#include "fabric/messages.h"
#include "fabric/transport.h"

namespace apichecker::fabric {

struct RemoteClientConfig {
  std::string endpoint;  // "unix:/path" or "tcp:host:port".
  uint32_t farm_id = 0;
  std::chrono::milliseconds connect_timeout{1000};
  // Generous: covers model sync plus a full emulation batch.
  std::chrono::milliseconds rpc_timeout{30'000};
  std::chrono::milliseconds heartbeat_interval{100};
  // Consecutive unanswered pings before the connection is declared lost.
  // 1 keeps the ISSUE's "breaker opens within one heartbeat interval" bound.
  uint32_t heartbeat_miss_threshold = 1;
  std::chrono::milliseconds reconnect_backoff_min{50};
  std::chrono::milliseconds reconnect_backoff_max{2000};
};

class RemoteFarmClient : public FarmBackend {
 public:
  // Starts the monitor thread immediately; the client connects (and keeps
  // reconnecting) in the background while the pool runs.
  RemoteFarmClient(const android::ApiUniverse& universe, RemoteClientConfig config);
  ~RemoteFarmClient() override;

  emu::BatchResult ExecuteBatch(std::span<const apk::ApkFile> apks, uint32_t model_version,
                                const core::ApiChecker& checker,
                                const emu::TrackedApiSet& tracked) override;

  void SetHealthListener(HealthListener listener) override;
  void StopMonitor() override;

  const char* kind() const override { return "remote"; }
  std::string describe() const override;
  double last_rpc_ms() const override {
    return last_rpc_ms_.load(std::memory_order_relaxed);
  }

  bool connected() const;
  uint64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }

 private:
  // One established worker connection. ExecuteBatch and the monitor thread
  // both hold shared_ptrs; Break() shuts both sockets down (waking any
  // blocked reader) without destroying them under a peer thread.
  struct Conn {
    Socket rpc;
    Socket heartbeat;
    std::atomic<bool> broken{false};
    // Version of the model last shipped on this connection; UINT32_MAX means
    // none yet. Touched only by ExecuteBatch (one in flight per backend).
    uint32_t model_version_sent = UINT32_MAX;

    void Break() {
      broken.store(true, std::memory_order_release);
      rpc.ShutdownBoth();
      heartbeat.ShutdownBoth();
    }
  };

  void MonitorLoop();
  std::shared_ptr<Conn> TryConnect(std::string* error);
  util::Result<Socket> OpenChannel(Channel channel, std::string* error);
  // Marks `conn` lost: breaks it, clears conn_ (if current), notifies the
  // listener once per connection.
  void MarkLost(const std::shared_ptr<Conn>& conn, const std::string& reason);
  // Sleeps up to `delay`, returning early (false) when stopping.
  bool SleepFor(std::chrono::milliseconds delay);
  emu::BatchResult TransportFault(const std::shared_ptr<Conn>& conn, std::string reason);

  const android::ApiUniverse& universe_;
  RemoteClientConfig config_;
  Endpoint endpoint_;
  uint64_t universe_checksum_ = 0;

  mutable std::mutex mu_;  // Guards conn_, listener_, lost_reported_.
  std::shared_ptr<Conn> conn_;
  HealthListener listener_;
  // True once kLost has been reported for the current outage, so flapping
  // inside one outage doesn't spam the breaker.
  bool lost_reported_ = false;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::thread monitor_;

  std::atomic<double> last_rpc_ms_{0.0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<bool> ever_connected_{false};
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_REMOTE_CLIENT_H_
