// RemoteFarmClient: a FarmBackend that executes batches on an `apichecker
// farm` worker process over the fabric protocol. Two connections per worker:
// an rpc channel (model sync + batch execution; one request in flight at a
// time, matching the pool's per-farm in-flight discipline) and a heartbeat
// channel driven by a chain of timer ticks on the unified runtime, so
// liveness probing never queues behind a long-running batch — and an idle
// fleet of N workers costs zero parked monitor threads.
//
// Connection-state machine (one tick in flight at a time; each tick
// schedules exactly its successor, so the chain is serialized):
//
//   [disconnected] --connect+handshake ok--> [connected]
//        ^  \--fail--> tick after backoff*2 (capped) --retry--/
//        |
//   [connected] --ping miss / EOF / rpc transport error--> Break()
//        \--> listener(kLost) --> [disconnected], backoff reset
//   reconnect success --> listener(kRestored)
//
// The pool maps kLost to "breaker force-open" and kRestored to "probe
// eligible now", which is how a SIGKILLed worker opens its breaker within
// one heartbeat interval and a returning worker re-enters service through
// the existing half-open probe. StopMonitor() keeps its contract: once it
// returns, no health listener will ever run again (it cancels the pending
// tick and waits out an executing one).

#ifndef APICHECKER_FABRIC_REMOTE_CLIENT_H_
#define APICHECKER_FABRIC_REMOTE_CLIENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "fabric/backend.h"
#include "fabric/messages.h"
#include "fabric/transport.h"
#include "rt/runtime.h"

namespace apichecker::fabric {

struct RemoteClientConfig {
  std::string endpoint;  // "unix:/path" or "tcp:host:port".
  uint32_t farm_id = 0;
  std::chrono::milliseconds connect_timeout{1000};
  // Generous: covers model sync plus a full emulation batch.
  std::chrono::milliseconds rpc_timeout{30'000};
  std::chrono::milliseconds heartbeat_interval{100};
  // Consecutive unanswered pings before the connection is declared lost.
  // 1 keeps the ISSUE's "breaker opens within one heartbeat interval" bound.
  uint32_t heartbeat_miss_threshold = 1;
  std::chrono::milliseconds reconnect_backoff_min{50};
  std::chrono::milliseconds reconnect_backoff_max{2000};
};

class RemoteFarmClient : public FarmBackend {
 public:
  // Schedules the first monitor tick immediately; the client connects (and
  // keeps reconnecting) in the background while the pool runs. `runtime`
  // hosts the tick timers and must outlive StopMonitor(); null makes the
  // client own a small private runtime (standalone/test construction).
  RemoteFarmClient(const android::ApiUniverse& universe, RemoteClientConfig config,
                   rt::Runtime* runtime = nullptr);
  ~RemoteFarmClient() override;

  emu::BatchResult ExecuteBatch(std::span<const apk::ApkFile> apks, uint32_t model_version,
                                const core::ApiChecker& checker,
                                const emu::TrackedApiSet& tracked) override;

  void SetHealthListener(HealthListener listener) override;
  void StopMonitor() override;

  const char* kind() const override { return "remote"; }
  std::string describe() const override;
  double last_rpc_ms() const override {
    return last_rpc_ms_.load(std::memory_order_relaxed);
  }

  bool connected() const;
  uint64_t reconnects() const { return reconnects_.load(std::memory_order_relaxed); }

 private:
  // One established worker connection. ExecuteBatch and the monitor thread
  // both hold shared_ptrs; Break() shuts both sockets down (waking any
  // blocked reader) without destroying them under a peer thread.
  struct Conn {
    Socket rpc;
    Socket heartbeat;
    std::atomic<bool> broken{false};
    // Version of the model last shipped on this connection; UINT32_MAX means
    // none yet. Touched only by ExecuteBatch (one in flight per backend).
    uint32_t model_version_sent = UINT32_MAX;

    void Break() {
      broken.store(true, std::memory_order_release);
      rpc.ShutdownBoth();
      heartbeat.ShutdownBoth();
    }
  };

  // The monitor tick: runs one connect attempt or one ping/pong exchange,
  // then schedules its successor. Bounded-blocking (connect_timeout / pong
  // timeout at most) on a runtime worker.
  void Tick();
  void ConnectStep();
  void HeartbeatStep(const std::shared_ptr<Conn>& conn);
  // Arms the next tick after `delay`, maintaining the pending-tick count
  // StopMonitor() drains against. No-op once stopping.
  void ScheduleTick(std::chrono::milliseconds delay);
  std::shared_ptr<Conn> TryConnect(std::string* error);
  util::Result<Socket> OpenChannel(Channel channel, std::string* error);
  // Marks `conn` lost: breaks it, clears conn_ (if current), notifies the
  // listener once per connection.
  void MarkLost(const std::shared_ptr<Conn>& conn, const std::string& reason);
  emu::BatchResult TransportFault(const std::shared_ptr<Conn>& conn, std::string reason);

  const android::ApiUniverse& universe_;
  RemoteClientConfig config_;
  Endpoint endpoint_;
  uint64_t universe_checksum_ = 0;
  std::unique_ptr<rt::Runtime> owned_runtime_;  // Only when none was passed.
  rt::Runtime* rt_ = nullptr;

  mutable std::mutex mu_;  // Guards conn_, listener_, lost_reported_.
  std::shared_ptr<Conn> conn_;
  HealthListener listener_;
  // True once kLost has been reported for the current outage, so flapping
  // inside one outage doesn't spam the breaker.
  bool lost_reported_ = false;

  std::atomic<bool> stop_{false};

  // Tick-chain accounting: pending_ticks_ counts the scheduled-or-executing
  // monitor ticks (0 or 1 in steady state; transiently 2 while a tick arms
  // its successor). StopMonitor cancels the armed timer and waits for the
  // count to hit zero — its "no listener after return" contract.
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
  int pending_ticks_ = 0;        // Guarded by tick_mu_.
  rt::CancelToken tick_timer_;   // Guarded by tick_mu_.

  // Monitor state, touched only by the (serialized) tick chain.
  std::chrono::milliseconds backoff_{0};
  bool first_attempt_ = true;
  uint64_t ping_seq_ = 0;

  std::atomic<double> last_rpc_ms_{0.0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<bool> ever_connected_{false};
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_REMOTE_CLIENT_H_
