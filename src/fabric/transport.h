// Blocking socket transport for the farm fabric. Unix-domain sockets are the
// default deployment shape (front-end and farm workers share a host, as in
// the paper's per-server layout); TCP endpoints exist so a fleet can span
// hosts. Frames are sent/received whole over a blocking fd with send/recv
// timeouts — there is no async machinery because every connection is owned by
// exactly one thread (a pool dispatch thread, a heartbeat monitor, or a
// worker's per-connection server thread).

#ifndef APICHECKER_FABRIC_TRANSPORT_H_
#define APICHECKER_FABRIC_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "fabric/wire.h"
#include "util/result.h"

namespace apichecker::fabric {

enum class EndpointKind : uint8_t {
  kUnix = 0,
  kTcp = 1,
};

// "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  EndpointKind kind = EndpointKind::kUnix;
  std::string path;    // Unix socket path.
  std::string host;    // TCP host.
  uint16_t port = 0;   // TCP port (0 = kernel-assigned, Listener reports it).

  std::string ToString() const;
};

util::Result<Endpoint> ParseEndpoint(const std::string& spec);

// One connected stream socket. Movable, closes on destruction. All I/O is
// blocking with the configured timeouts; any failure (timeout, EOF, protocol
// error) poisons the socket — the fabric's error model is "disconnect and
// let the reconnect/breaker machinery handle it", never "retry on the same
// connection".
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  static util::Result<Socket> Connect(const Endpoint& endpoint,
                                      std::chrono::milliseconds timeout);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void SetRecvTimeout(std::chrono::milliseconds timeout);
  void SetSendTimeout(std::chrono::milliseconds timeout);

  // Writes one encoded frame. Counts fabric frames/bytes sent on success.
  util::Result<bool> SendFrame(MsgType type, std::span<const uint8_t> payload);

  // Reads exactly one frame. Hostile input (bad magic, oversized length, CRC
  // or version mismatch) is counted via CountProtocolError and returned as an
  // error; the caller must treat the connection as dead. A clean EOF before
  // any header byte returns the error "peer closed".
  util::Result<Frame> RecvFrame();

  // Shuts down both directions without closing the fd — unblocks a thread
  // parked in RecvFrame on this socket from another thread. (close() alone
  // does not reliably wake a blocked reader, and would race fd reuse.)
  void ShutdownBoth();

  void Close();

 private:
  util::Result<bool> SendAll(const uint8_t* data, size_t len);
  util::Result<bool> RecvAll(uint8_t* data, size_t len);

  int fd_ = -1;
};

// A bound, listening socket. Accept blocks until a connection arrives or
// Close() is called from another thread (which unblocks it with an error).
// fd_ is atomic because Close() races the accept thread by design; Close
// claims the fd with an exchange so it is shut down and closed exactly once.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens. For unix endpoints a stale socket file is unlinked
  // first. For "tcp:host:0" the kernel assigns a port; bound_endpoint()
  // reports the real one.
  static util::Result<Listener> Bind(const Endpoint& endpoint);

  util::Result<Socket> Accept();

  const Endpoint& bound_endpoint() const { return endpoint_; }
  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }

  void Close();

 private:
  std::atomic<int> fd_{-1};
  Endpoint endpoint_;
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_TRANSPORT_H_
