// Socket transport for the farm fabric. Unix-domain sockets are the default
// deployment shape (front-end and farm workers share a host, as in the
// paper's per-server layout); TCP endpoints exist so a fleet can span hosts.
//
// Two I/O styles share one Socket:
//  - Whole-frame blocking calls (SendFrame/RecvFrame) with send/recv
//    timeouts, used where a connection is owned by exactly one bounded task
//    (a pool dispatch task, a heartbeat tick).
//  - Readiness-driven reads (ReadSome with MSG_DONTWAIT + rt::Runtime's
//    PostFd watches + a streaming FrameAssembler), used by the farm worker
//    and the ingest gateway so idle connections cost zero parked threads.
//    The fd itself stays blocking: sends remain whole-frame and bounded by
//    SO_SNDTIMEO even on a readiness-driven connection.

#ifndef APICHECKER_FABRIC_TRANSPORT_H_
#define APICHECKER_FABRIC_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fabric/wire.h"
#include "util/result.h"

namespace apichecker::fabric {

enum class EndpointKind : uint8_t {
  kUnix = 0,
  kTcp = 1,
};

// "unix:/path/to.sock" or "tcp:host:port".
struct Endpoint {
  EndpointKind kind = EndpointKind::kUnix;
  std::string path;    // Unix socket path.
  std::string host;    // TCP host.
  uint16_t port = 0;   // TCP port (0 = kernel-assigned, Listener reports it).

  std::string ToString() const;
};

util::Result<Endpoint> ParseEndpoint(const std::string& spec);

// One connected stream socket. Movable, closes on destruction. All I/O is
// blocking with the configured timeouts; any failure (timeout, EOF, protocol
// error) poisons the socket — the fabric's error model is "disconnect and
// let the reconnect/breaker machinery handle it", never "retry on the same
// connection".
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  static util::Result<Socket> Connect(const Endpoint& endpoint,
                                      std::chrono::milliseconds timeout);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void SetRecvTimeout(std::chrono::milliseconds timeout);
  void SetSendTimeout(std::chrono::milliseconds timeout);

  // Writes one encoded frame. Counts fabric frames/bytes sent on success.
  util::Result<bool> SendFrame(MsgType type, std::span<const uint8_t> payload);

  // Reads exactly one frame. Hostile input (bad magic, oversized length, CRC
  // or version mismatch) is counted via CountProtocolError and returned as an
  // error; the caller must treat the connection as dead. A clean EOF before
  // any header byte returns the error "peer closed".
  util::Result<Frame> RecvFrame();

  // One nonblocking recv() of up to out.size() bytes (MSG_DONTWAIT — the fd
  // itself stays blocking so sends keep their SO_SNDTIMEO bound). The
  // readiness-driven read path: a PostFd watch fires, the owner drains with
  // ReadSome until kWouldBlock, feeds a FrameAssembler, then re-arms.
  enum class ReadStatus : uint8_t {
    kData = 0,        // `bytes` were read.
    kWouldBlock = 1,  // Socket drained; re-arm the readiness watch.
    kEof = 2,         // Peer closed cleanly.
    kError = 3,       // Transport error (see `error`); connection is dead.
  };
  struct ReadSomeResult {
    ReadStatus status = ReadStatus::kError;
    size_t bytes = 0;
    std::string error;
  };
  ReadSomeResult ReadSome(std::span<uint8_t> out);

  // Shuts down both directions without closing the fd — unblocks a thread
  // parked in RecvFrame on this socket from another thread. (close() alone
  // does not reliably wake a blocked reader, and would race fd reuse.)
  void ShutdownBoth();

  void Close();

 private:
  util::Result<bool> SendAll(const uint8_t* data, size_t len);
  util::Result<bool> RecvAll(uint8_t* data, size_t len);

  int fd_ = -1;
};

// Incremental frame decoder for readiness-driven readers: Feed() raw bytes
// as they arrive off ReadSome, Pull() complete frames out. Built on
// DecodeFrame's kTruncated streaming contract, with the same accounting as
// the blocking RecvFrame path: a completed frame counts
// apichecker_fabric_frames/bytes_received_total, a malformed one funnels
// through CountProtocolError — so the two read styles cannot drift apart.
// Buffering is bounded by kMaxFramePayload + framing overhead (DecodeFrame
// rejects an oversized declared length from the header alone).
class FrameAssembler {
 public:
  struct Next {
    // kOk: `frame` is valid. kTruncated: need more bytes (not an error).
    // Anything else: protocol error, already counted; drop the connection.
    DecodeStatus status = DecodeStatus::kTruncated;
    Frame frame;
  };

  void Feed(std::span<const uint8_t> bytes);
  Next Pull();

  size_t buffered() const { return buffer_.size() - offset_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t offset_ = 0;  // Consumed prefix, compacted away periodically.
};

// A bound, listening socket. Accept blocks until a connection arrives or
// Close() is called from another thread (which unblocks it with an error).
// fd_ is atomic because Close() races the accept thread by design; Close
// claims the fd with an exchange so it is shut down and closed exactly once.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  // Binds and listens. For unix endpoints a stale socket file is unlinked
  // first. For "tcp:host:0" the kernel assigns a port; bound_endpoint()
  // reports the real one.
  static util::Result<Listener> Bind(const Endpoint& endpoint);

  util::Result<Socket> Accept();

  // Nonblocking accept for a readiness-driven caller (a PostFd watch on
  // fd()): returns a connected (blocking) socket, std::nullopt when no
  // connection is pending (spurious readiness — e.g. the peer reset before
  // the accept), or an error when the listener is closed or broken. Puts the
  // listener fd into nonblocking mode on first use; do not mix with the
  // blocking Accept() afterwards.
  util::Result<std::optional<Socket>> TryAccept();

  const Endpoint& bound_endpoint() const { return endpoint_; }
  int fd() const { return fd_.load(std::memory_order_acquire); }
  bool valid() const { return fd_.load(std::memory_order_acquire) >= 0; }

  void Close();

 private:
  std::atomic<int> fd_{-1};
  Endpoint endpoint_;
  bool nonblocking_ = false;
};

}  // namespace apichecker::fabric

#endif  // APICHECKER_FABRIC_TRANSPORT_H_
