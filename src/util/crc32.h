// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), as used by the ZIP
// archive format. Hand-rolled because the APK container codec (src/apk)
// validates entry checksums exactly the way a real APK parser would.

#ifndef APICHECKER_UTIL_CRC32_H_
#define APICHECKER_UTIL_CRC32_H_

#include <cstdint>
#include <cstddef>
#include <span>

namespace apichecker::util {

// One-shot CRC-32 of a byte buffer.
uint32_t Crc32(std::span<const uint8_t> data);

// Incremental interface: Crc32Update(Crc32Init(), chunk) ... Crc32Final().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t state, std::span<const uint8_t> data);
uint32_t Crc32Final(uint32_t state);

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_CRC32_H_
