#include "util/thread_pool.h"

#include <algorithm>
#include <cstdio>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace apichecker::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] {
#if defined(__linux__)
      // Named like the rt threads (rt-worker-N / rt-timer / rt-poller) so
      // TSan reports, perf profiles, and /proc/<pid>/task are attributable.
      char name[16];
      std::snprintf(name, sizeof(name), "pool-worker-%zu", i);
      (void)pthread_setname_np(pthread_self(), name);
#endif
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task, size_t max_pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_ || in_flight_ >= max_pending) {
      return false;
    }
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  if (begin >= end) {
    return;
  }
  const size_t n = end - begin;
  const size_t chunks = std::min(n, threads_.size() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = begin + c * chunk_size;
    const size_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) {
      break;
    }
    Submit([lo, hi, &body] {
      for (size_t i = lo; i < hi; ++i) {
        body(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // Shutting down and drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace apichecker::util
