// Hand-rolled SHA-1 (FIPS 180-1), dependency-free. The serving layer keys its
// digest cache on the SHA-1 of the raw submitted APK bytes — the role the
// paper's MD5 content hash plays in §4.1 (same package + different digest is
// a different app; same digest is a resubmission and can skip re-analysis).
// Not a security boundary here: collisions only cost a stale cache entry.

#ifndef APICHECKER_UTIL_SHA1_H_
#define APICHECKER_UTIL_SHA1_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace apichecker::util {

inline constexpr size_t kSha1DigestSize = 20;

std::array<uint8_t, kSha1DigestSize> Sha1(std::span<const uint8_t> data);

// 40 lowercase hex characters.
std::string Sha1Hex(std::span<const uint8_t> data);

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_SHA1_H_
