// Hand-rolled SHA-1 (FIPS 180-1), dependency-free. The serving layer keys its
// digest cache on the SHA-1 of the raw submitted APK bytes — the role the
// paper's MD5 content hash plays in §4.1 (same package + different digest is
// a different app; same digest is a resubmission and can skip re-analysis).
// Not a security boundary here: collisions only cost a stale cache entry.

#ifndef APICHECKER_UTIL_SHA1_H_
#define APICHECKER_UTIL_SHA1_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace apichecker::util {

inline constexpr size_t kSha1DigestSize = 20;

// Streaming hasher: Update() as chunks arrive (any sizes, including zero),
// Final() once to pad and extract the digest. After Final() the hasher is
// reset and may be reused for a fresh message. The ingest layer feeds this
// from a chunked reader so an 8 MB APK is hashed while it streams in instead
// of requiring the full buffer up front.
class Sha1Hasher {
 public:
  Sha1Hasher() { Reset(); }

  void Update(std::span<const uint8_t> data);
  std::array<uint8_t, kSha1DigestSize> Final();
  // 40 lowercase hex characters; same reset-on-completion semantics.
  std::string FinalHex();
  void Reset();

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_bytes_ = 0;
};

std::array<uint8_t, kSha1DigestSize> Sha1(std::span<const uint8_t> data);

// 40 lowercase hex characters.
std::string Sha1Hex(std::span<const uint8_t> data);

std::string Sha1DigestHex(const std::array<uint8_t, kSha1DigestSize>& digest);

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_SHA1_H_
