// Fixed-size thread pool used by the emulator device farm (§5.1 runs 16
// emulators on 16 cores) and by parallelizable ML training loops. Tasks are
// void() closures; ParallelFor partitions an index range into contiguous
// chunks so results can be written to pre-sized output slots without locking.

#ifndef APICHECKER_UTIL_THREAD_POOL_H_
#define APICHECKER_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace apichecker::util {

class ThreadPool {
 public:
  // num_threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Non-blocking admission-controlled submit: enqueues only while fewer than
  // `max_pending` tasks are queued or running. Returns whether the task was
  // accepted (false = caller should shed load or retry later).
  bool TrySubmit(std::function<void()> task, size_t max_pending);

  // Blocks until every submitted task has finished.
  void Wait();

  // Runs body(i) for i in [begin, end), split across the pool, and blocks
  // until done. body must be safe to call concurrently for distinct i.
  void ParallelFor(size_t begin, size_t end, const std::function<void(size_t)>& body);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_THREAD_POOL_H_
