#include "util/sha1.h"

#include <bit>
#include <cstring>

namespace apichecker::util {

namespace {

inline uint32_t Rotl(uint32_t value, int bits) { return std::rotl(value, bits); }

struct Sha1State {
  uint32_t h[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};

  void ProcessBlock(const uint8_t* block) {
    uint32_t w[80];
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<uint32_t>(block[t * 4]) << 24) |
             (static_cast<uint32_t>(block[t * 4 + 1]) << 16) |
             (static_cast<uint32_t>(block[t * 4 + 2]) << 8) |
             static_cast<uint32_t>(block[t * 4 + 3]);
    }
    for (int t = 16; t < 80; ++t) {
      w[t] = Rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      uint32_t f, k;
      if (t < 20) {
        f = (b & c) | ((~b) & d);
        k = 0x5A827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const uint32_t temp = Rotl(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = Rotl(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
};

}  // namespace

std::array<uint8_t, kSha1DigestSize> Sha1(std::span<const uint8_t> data) {
  Sha1State state;
  size_t offset = 0;
  while (data.size() - offset >= 64) {
    state.ProcessBlock(data.data() + offset);
    offset += 64;
  }

  // Final block(s): 0x80 terminator, zero pad, 64-bit big-endian bit length.
  uint8_t tail[128] = {0};
  const size_t rem = data.size() - offset;
  if (rem > 0) {
    std::memcpy(tail, data.data() + offset, rem);
  }
  tail[rem] = 0x80;
  const size_t tail_len = rem + 1 + 8 <= 64 ? 64 : 128;
  const uint64_t bit_len = static_cast<uint64_t>(data.size()) * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  state.ProcessBlock(tail);
  if (tail_len == 128) {
    state.ProcessBlock(tail + 64);
  }

  std::array<uint8_t, kSha1DigestSize> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(state.h[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(state.h[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(state.h[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(state.h[i]);
  }
  return digest;
}

std::string Sha1Hex(std::span<const uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  const auto digest = Sha1(data);
  std::string hex(kSha1DigestSize * 2, '0');
  for (size_t i = 0; i < digest.size(); ++i) {
    hex[i * 2] = kHex[digest[i] >> 4];
    hex[i * 2 + 1] = kHex[digest[i] & 0xF];
  }
  return hex;
}

}  // namespace apichecker::util
