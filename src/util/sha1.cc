#include "util/sha1.h"

#include <bit>
#include <cstring>

namespace apichecker::util {

namespace {

inline uint32_t Rotl(uint32_t value, int bits) { return std::rotl(value, bits); }

}  // namespace

void Sha1Hasher::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  buffer_len_ = 0;
  total_bytes_ = 0;
}

void Sha1Hasher::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<uint32_t>(block[t * 4]) << 24) |
           (static_cast<uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = Rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const uint32_t temp = Rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1Hasher::Update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t offset = 0;
  if (buffer_len_ > 0) {
    const size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ < 64) {
      return;
    }
    ProcessBlock(buffer_);
    buffer_len_ = 0;
  }
  while (data.size() - offset >= 64) {
    ProcessBlock(data.data() + offset);
    offset += 64;
  }
  const size_t rem = data.size() - offset;
  if (rem > 0) {
    std::memcpy(buffer_, data.data() + offset, rem);
    buffer_len_ = rem;
  }
}

std::array<uint8_t, kSha1DigestSize> Sha1Hasher::Final() {
  // Final block(s): 0x80 terminator, zero pad, 64-bit big-endian bit length.
  uint8_t tail[128] = {0};
  const size_t rem = buffer_len_;
  if (rem > 0) {
    std::memcpy(tail, buffer_, rem);
  }
  tail[rem] = 0x80;
  const size_t tail_len = rem + 1 + 8 <= 64 ? 64 : 128;
  const uint64_t bit_len = total_bytes_ * 8;
  for (int i = 0; i < 8; ++i) {
    tail[tail_len - 1 - i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  ProcessBlock(tail);
  if (tail_len == 128) {
    ProcessBlock(tail + 64);
  }

  std::array<uint8_t, kSha1DigestSize> digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  Reset();
  return digest;
}

std::string Sha1Hasher::FinalHex() { return Sha1DigestHex(Final()); }

std::array<uint8_t, kSha1DigestSize> Sha1(std::span<const uint8_t> data) {
  Sha1Hasher hasher;
  hasher.Update(data);
  return hasher.Final();
}

std::string Sha1DigestHex(const std::array<uint8_t, kSha1DigestSize>& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string hex(kSha1DigestSize * 2, '0');
  for (size_t i = 0; i < digest.size(); ++i) {
    hex[i * 2] = kHex[digest[i] >> 4];
    hex[i * 2 + 1] = kHex[digest[i] & 0xF];
  }
  return hex;
}

std::string Sha1Hex(std::span<const uint8_t> data) {
  return Sha1DigestHex(Sha1(data));
}

}  // namespace apichecker::util
