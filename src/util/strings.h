// Small string helpers shared across modules.

#ifndef APICHECKER_UTIL_STRINGS_H_
#define APICHECKER_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace apichecker::util {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> Split(std::string_view text, char delim);

// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Formats a double with `digits` fractional digits (fixed notation).
std::string FormatDouble(double value, int digits);

// Formats a fraction in [0,1] as a percentage string, e.g. "98.6%".
std::string FormatPercent(double fraction, int digits = 1);

// Human-readable large count, e.g. 42'300'000 -> "42.3M".
std::string FormatCount(double value);

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_STRINGS_H_
