#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace apichecker::util {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : origin_seed_(seed) {
  // Seed the four Xoshiro words from a SplitMix64 cascade, as recommended by
  // the Xoshiro authors, to avoid the all-zero state.
  uint64_t s = seed;
  for (auto& w : state_) {
    s = SplitMix64(s);
    w = s;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Debiased modulo via rejection sampling on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? Next() : NextBounded(span));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::LogNormal(double median, double sigma) {
  return std::exp(Normal(std::log(median), sigma));
}

double Rng::Exponential(double mean) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double v = Normal(mean, std::sqrt(mean));
    return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += std::max(0.0, w);
  }
  if (total <= 0.0) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

std::vector<uint32_t> Rng::Permutation(size_t n) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[NextBounded(i)]);
  }
  return perm;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  k = std::min(k, n);
  if (k == 0) {
    return {};
  }
  // Partial Fisher–Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  for (size_t i = 0; i < k; ++i) {
    const size_t j = i + NextBounded(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork(uint64_t stream_id) const {
  return Rng(SplitMix64(origin_seed_ ^ SplitMix64(stream_id)));
}

ZipfSampler::ZipfSampler(size_t n, double exponent) : exponent_(exponent) {
  cdf_.resize(n);
  double acc = 0.0;
  for (size_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = acc;
  }
  norm_ = acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double target = rng.NextDouble() * norm_;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), target);
  return static_cast<size_t>(std::min<ptrdiff_t>(it - cdf_.begin(),
                                                 static_cast<ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::Pmf(size_t rank) const {
  if (rank >= cdf_.size() || norm_ <= 0.0) {
    return 0.0;
  }
  return (1.0 / std::pow(static_cast<double>(rank + 1), exponent_)) / norm_;
}

}  // namespace apichecker::util
