#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace apichecker::util {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatPercent(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, fraction * 100.0);
}

std::string FormatCount(double value) {
  const double abs = std::fabs(value);
  if (abs >= 1e9) {
    return StrFormat("%.1fB", value / 1e9);
  }
  if (abs >= 1e6) {
    return StrFormat("%.1fM", value / 1e6);
  }
  if (abs >= 1e3) {
    return StrFormat("%.1fK", value / 1e3);
  }
  return StrFormat("%.0f", value);
}

}  // namespace apichecker::util
