// Deterministic pseudo-random number generation.
//
// Every stochastic component in the reproduction (corpus synthesis, emulation
// cost models, ML training) draws from these generators so that a fixed seed
// yields a bit-identical run. The generators are SplitMix64 (for seeding and
// cheap one-shot hashing) and Xoshiro256** (the workhorse stream generator).

#ifndef APICHECKER_UTIL_RNG_H_
#define APICHECKER_UTIL_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace apichecker::util {

// Mixes a 64-bit value into a well-distributed 64-bit output. Stateless.
uint64_t SplitMix64(uint64_t x);

// Xoshiro256** PRNG. Satisfies UniformRandomBitGenerator so it can be used
// with <random> distributions, though the member helpers below are preferred
// because their output is stable across standard-library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return Next(); }

  uint64_t Next();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Standard normal via Box–Muller (cached second variate).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Log-normal where `median` is the distribution median, i.e.
  // exp(Normal(ln median, sigma)).
  double LogNormal(double median, double sigma);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  // method for small means and a normal approximation above 64.
  uint64_t Poisson(double mean);

  // Samples an index from an unnormalized non-negative weight vector.
  // Returns weights.size() - 1 on degenerate input (all zero weights).
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher–Yates shuffles indices [0, n) and returns the permutation.
  std::vector<uint32_t> Permutation(size_t n);

  // Samples k distinct values from [0, n) (k <= n), in random order.
  std::vector<uint32_t> SampleWithoutReplacement(size_t n, size_t k);

  // Forks an independent stream: deterministic function of this generator's
  // seed lineage and `stream_id`, without disturbing this generator's state.
  Rng Fork(uint64_t stream_id) const;

 private:
  std::array<uint64_t, 4> state_;
  uint64_t origin_seed_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf(s) sampler over ranks [0, n). Precomputes the CDF once; sampling is
// O(log n). Used for API invocation-frequency modelling: a few framework APIs
// are invoked by nearly every app, most are rare (paper §4.3).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const;

  // Probability mass of rank r.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  double norm_ = 0.0;
  double exponent_ = 1.0;
};

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_RNG_H_
