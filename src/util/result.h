// A minimal value-or-error type used for fallible operations such as APK
// parsing, in the spirit of zx::result / absl::StatusOr. The error arm is a
// human-readable message; there is no error-code taxonomy because callers in
// this codebase either propagate or report the message verbatim.

#ifndef APICHECKER_UTIL_RESULT_H_
#define APICHECKER_UTIL_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace apichecker::util {

// Distinct wrapper so Result<std::string> is unambiguous.
struct Error {
  std::string message;
};

inline Error Err(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Result {
 public:
  // Implicit construction from both arms keeps call sites terse:
  //   return Err("bad magic");
  //   return value;
  Result(T value) : rep_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : rep_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(rep_).message;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Error> rep_;
};

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_RESULT_H_
