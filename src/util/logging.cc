#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace apichecker::util {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void LogLine(LogSeverity severity, const std::string& message) {
  if (static_cast<int>(severity) < g_min_severity.load(std::memory_order_relaxed)) {
    return;
  }
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", SeverityTag(severity), message.c_str());
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  stream_ << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() { LogLine(severity_, stream_.str()); }

}  // namespace internal
}  // namespace apichecker::util
