#include "util/logging.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/strings.h"

namespace apichecker::util {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};
std::atomic<int> g_format{static_cast<int>(LogFormat::kText)};
// Environment configuration is applied once, lazily, unless an explicit
// SetMinLogSeverity/SetLogFormat call claimed the setting first.
std::atomic<bool> g_env_checked{false};

void ApplyEnvConfig() {
  if (g_env_checked.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  if (const char* level = std::getenv("APICHECKER_LOG_LEVEL")) {
    if (std::strcmp(level, "debug") == 0) {
      g_min_severity.store(static_cast<int>(LogSeverity::kDebug));
    } else if (std::strcmp(level, "info") == 0) {
      g_min_severity.store(static_cast<int>(LogSeverity::kInfo));
    } else if (std::strcmp(level, "warn") == 0 || std::strcmp(level, "warning") == 0) {
      g_min_severity.store(static_cast<int>(LogSeverity::kWarning));
    } else if (std::strcmp(level, "error") == 0) {
      g_min_severity.store(static_cast<int>(LogSeverity::kError));
    } else {
      std::fprintf(stderr, "[WARN] ignoring unknown APICHECKER_LOG_LEVEL=%s\n", level);
    }
  }
  if (const char* format = std::getenv("APICHECKER_LOG_FORMAT")) {
    if (std::strcmp(format, "json") == 0) {
      g_format.store(static_cast<int>(LogFormat::kJson));
    } else if (std::strcmp(format, "text") == 0) {
      g_format.store(static_cast<int>(LogFormat::kText));
    } else {
      std::fprintf(stderr, "[WARN] ignoring unknown APICHECKER_LOG_FORMAT=%s\n", format);
    }
  }
}

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "DEBUG";
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) {
  g_env_checked.store(true, std::memory_order_release);  // Explicit set wins.
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

LogSeverity MinLogSeverity() {
  ApplyEnvConfig();
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void SetLogFormat(LogFormat format) {
  g_env_checked.store(true, std::memory_order_release);
  g_format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  ApplyEnvConfig();
  return static_cast<LogFormat>(g_format.load(std::memory_order_relaxed));
}

void LogLine(LogSeverity severity, const std::string& message) {
  if (static_cast<int>(severity) < static_cast<int>(MinLogSeverity())) {
    return;
  }
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (GetLogFormat() == LogFormat::kJson) {
    std::fprintf(stderr, "{\"severity\": \"%s\", \"message\": \"%s\"}\n",
                 SeverityTag(severity), JsonEscape(message).c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", SeverityTag(severity), message.c_str());
  }
}

StructuredLog::StructuredLog(LogSeverity severity, std::string_view event)
    : severity_(severity),
      enabled_(static_cast<int>(severity) >= static_cast<int>(MinLogSeverity())),
      event_(enabled_ ? std::string(event) : std::string()) {}

StructuredLog& StructuredLog::With(std::string_view key, std::string_view value) {
  if (enabled_) {
    fields_.push_back({std::string(key), std::string(value), /*quoted=*/true});
  }
  return *this;
}

StructuredLog& StructuredLog::With(std::string_view key, bool value) {
  if (enabled_) {
    fields_.push_back({std::string(key), value ? "true" : "false", /*quoted=*/false});
  }
  return *this;
}

StructuredLog& StructuredLog::With(std::string_view key, double value) {
  if (enabled_) {
    fields_.push_back({std::string(key), StrFormat("%.6g", value), /*quoted=*/false});
  }
  return *this;
}

StructuredLog& StructuredLog::WithInt(std::string_view key, int64_t value) {
  if (enabled_) {
    fields_.push_back({std::string(key), StrFormat("%" PRId64, value), /*quoted=*/false});
  }
  return *this;
}

StructuredLog::~StructuredLog() {
  if (!enabled_) {
    return;
  }
  std::string line;
  if (GetLogFormat() == LogFormat::kJson) {
    line = StrFormat("{\"severity\": \"%s\", \"event\": \"%s\"", SeverityTag(severity_),
                     JsonEscape(event_).c_str());
    for (const Field& field : fields_) {
      line += StrFormat(", \"%s\": ", JsonEscape(field.key).c_str());
      if (field.quoted) {
        line += "\"" + JsonEscape(field.value) + "\"";
      } else {
        line += field.value;
      }
    }
    line += "}";
  } else {
    line = StrFormat("[%s] %s", SeverityTag(severity_), event_.c_str());
    for (const Field& field : fields_) {
      if (field.quoted) {
        line += StrFormat(" %s=\"%s\"", field.key.c_str(), field.value.c_str());
      } else {
        line += StrFormat(" %s=%s", field.key.c_str(), field.value.c_str());
      }
    }
  }
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fprintf(stderr, "%s\n", line.c_str());
}

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  stream_ << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() { LogLine(severity_, stream_.str()); }

}  // namespace internal
}  // namespace apichecker::util
