#include "util/byte_io.h"

namespace apichecker::util {

void ByteWriter::PutU8(uint8_t v) { buffer_.push_back(v); }

void ByteWriter::PutU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutUleb128(uint64_t v) {
  do {
    uint8_t byte = v & 0x7Fu;
    v >>= 7;
    if (v != 0) {
      byte |= 0x80u;
    }
    buffer_.push_back(byte);
  } while (v != 0);
}

void ByteWriter::PutBytes(std::span<const uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::PutString(std::string_view s) {
  PutUleb128(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void ByteWriter::PatchU32(size_t offset, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.at(offset + static_cast<size_t>(i)) = static_cast<uint8_t>(v >> (8 * i));
  }
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) {
    return Err("byte reader underrun (u8)");
  }
  return data_[pos_++];
}

Result<uint16_t> ByteReader::ReadU16() {
  if (remaining() < 2) {
    return Err("byte reader underrun (u16)");
  }
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) {
    return Err("byte reader underrun (u32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  if (remaining() < 8) {
    return Err("byte reader underrun (u64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<uint64_t> ByteReader::ReadUleb128() {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (AtEnd()) {
      return Err("byte reader underrun (uleb128)");
    }
    if (shift >= 64) {
      return Err("uleb128 overflow");
    }
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      return v;
    }
    shift += 7;
  }
}

Result<std::vector<uint8_t>> ByteReader::ReadBytes(size_t n) {
  if (remaining() < n) {
    return Err("byte reader underrun (bytes)");
  }
  std::vector<uint8_t> out(data_.begin() + static_cast<ptrdiff_t>(pos_),
                           data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::ReadString() {
  auto len = ReadUleb128();
  if (!len.ok()) {
    return Err(len.error());
  }
  if (remaining() < *len) {
    return Err("byte reader underrun (string body)");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<size_t>(*len));
  pos_ += static_cast<size_t>(*len);
  return out;
}

Result<bool> ByteReader::Seek(size_t offset) {
  if (offset > data_.size()) {
    return Err("seek out of bounds");
  }
  pos_ = offset;
  return true;
}

}  // namespace apichecker::util
