// Capacity-bounded FIFO MPMC queue (mutex + condition variables) with close
// semantics: the serving layer's admission-control primitive. TryPush gives
// producers a non-blocking rejection path (backpressure instead of unbounded
// growth), Close() wakes every waiter, fails further pushes, and lets
// consumers drain what is already queued. Priority ordering lives above this
// queue (serve::SubmissionShards keeps one strict-FIFO lane per class).

#ifndef APICHECKER_UTIL_BOUNDED_QUEUE_H_
#define APICHECKER_UTIL_BOUNDED_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace apichecker::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(std::max<size_t>(1, capacity)) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Non-blocking. Returns false when the queue is full or closed.
  bool TryPush(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks while full. Returns false if the queue was (or becomes) closed.
  bool Push(T value) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    return PopUnconditionallyLocked();
  }

  // Blocks up to `timeout`; nullopt on timeout or on closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout, [this] { return closed_ || !items_.empty(); });
    return PopLocked();
  }

  // Idempotent. Further pushes fail; pops drain the remaining items.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  // Both helpers require mu_ held.
  std::optional<T> PopLocked() {
    if (items_.empty()) {
      return std::nullopt;  // Closed and drained (or timed out).
    }
    return PopUnconditionallyLocked();
  }

  std::optional<T> PopUnconditionallyLocked() {
    std::optional<T> value(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_BOUNDED_QUEUE_H_
