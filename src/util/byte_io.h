// Little-endian byte buffer writer/reader used by the APK container codec.
// ZIP and DEX are little-endian formats; these helpers centralize the
// serialization so the codecs never touch raw pointer arithmetic.

#ifndef APICHECKER_UTIL_BYTE_IO_H_
#define APICHECKER_UTIL_BYTE_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace apichecker::util {

class ByteWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  // Unsigned LEB128, as used by DEX for variable-length counts.
  void PutUleb128(uint64_t v);
  void PutBytes(std::span<const uint8_t> data);
  // Length-prefixed (ULEB128) UTF-8 string.
  void PutString(std::string_view s);

  size_t size() const { return buffer_.size(); }
  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buffer_); }

  // Overwrites a previously written u32 at `offset` (for back-patching
  // lengths/offsets in container headers).
  void PatchU32(size_t offset, uint32_t v);

 private:
  std::vector<uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<uint64_t> ReadUleb128();
  Result<std::vector<uint8_t>> ReadBytes(size_t n);
  Result<std::string> ReadString();

  // Absolute seek. Fails when out of bounds.
  Result<bool> Seek(size_t offset);

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_BYTE_IO_H_
