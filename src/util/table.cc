#include "util/table.h"

#include <algorithm>

namespace apichecker::util {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ',';
      }
      os << CsvEscape(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace apichecker::util
