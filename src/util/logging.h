// Leveled stderr logging with a structured (key=value) variant. The minimum
// emitted severity comes from the APICHECKER_LOG_LEVEL environment variable
// (debug|info|warn|error) unless set explicitly in-process, and the sink can
// emit classic text lines or one JSON object per line
// (APICHECKER_LOG_FORMAT=json) for log shippers.
//
//   APICHECKER_LOG(Info) << "freeform message";            // stream style
//   APICHECKER_SLOG(Warning, "emu.crash")                  // structured
//       .With("package", pkg).With("minutes", 3.2);

#ifndef APICHECKER_UTIL_LOGGING_H_
#define APICHECKER_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace apichecker::util {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

enum class LogFormat : int {
  kText = 0,
  kJson = 1,
};

// Sets/gets the process-global minimum severity that is actually emitted.
// An explicit Set wins over the APICHECKER_LOG_LEVEL environment variable.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Output format; APICHECKER_LOG_FORMAT=json selects JSON unless overridden.
void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

// Emits one formatted line to stderr if `severity` passes the filter.
void LogLine(LogSeverity severity, const std::string& message);

// Structured log event: a short dot-separated event name plus typed
// key=value fields, emitted on destruction. Fields are skipped entirely when
// the severity is filtered, so disabled-level calls stay cheap.
class StructuredLog {
 public:
  StructuredLog(LogSeverity severity, std::string_view event);
  ~StructuredLog();

  StructuredLog(const StructuredLog&) = delete;
  StructuredLog& operator=(const StructuredLog&) = delete;

  StructuredLog& With(std::string_view key, std::string_view value);
  StructuredLog& With(std::string_view key, const char* value) {
    return With(key, std::string_view(value));
  }
  StructuredLog& With(std::string_view key, const std::string& value) {
    return With(key, std::string_view(value));
  }
  StructuredLog& With(std::string_view key, bool value);
  StructuredLog& With(std::string_view key, double value);
  template <typename T>
    requires std::is_integral_v<T>
  StructuredLog& With(std::string_view key, T value) {
    return WithInt(key, static_cast<int64_t>(value));
  }

 private:
  StructuredLog& WithInt(std::string_view key, int64_t value);

  struct Field {
    std::string key;
    std::string value;  // Pre-rendered.
    bool quoted;        // Whether the JSON sink must quote it.
  };

  LogSeverity severity_;
  bool enabled_;
  std::string event_;
  std::vector<Field> fields_;
};

namespace internal {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace apichecker::util

#define APICHECKER_LOG(severity)                                              \
  ::apichecker::util::internal::LogMessage(                                   \
      ::apichecker::util::LogSeverity::k##severity, __FILE__, __LINE__)       \
      .stream()

#define APICHECKER_SLOG(severity, event)                                      \
  ::apichecker::util::StructuredLog(                                          \
      ::apichecker::util::LogSeverity::k##severity, (event))

#endif  // APICHECKER_UTIL_LOGGING_H_
