// Leveled stderr logging. Deliberately tiny: the library is deterministic and
// single-binary, so structured logging backends would be overkill. Severity is
// filtered by a process-global minimum that benches/examples may raise.

#ifndef APICHECKER_UTIL_LOGGING_H_
#define APICHECKER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace apichecker::util {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Sets/gets the process-global minimum severity that is actually emitted.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Emits one formatted line to stderr if `severity` passes the filter.
void LogLine(LogSeverity severity, const std::string& message);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace apichecker::util

#define APICHECKER_LOG(severity)                                              \
  ::apichecker::util::internal::LogMessage(                                   \
      ::apichecker::util::LogSeverity::k##severity, __FILE__, __LINE__)       \
      .stream()

#endif  // APICHECKER_UTIL_LOGGING_H_
