// ASCII table and CSV emission for benchmark/report output. Every benchmark
// binary prints the rows/series of the paper table or figure it regenerates;
// this keeps that output consistent and machine-diffable.

#ifndef APICHECKER_UTIL_TABLE_H_
#define APICHECKER_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace apichecker::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment and a header rule.
  void Print(std::ostream& os) const;

  // Renders as CSV (RFC-4180-ish quoting for commas/quotes).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace apichecker::util

#endif  // APICHECKER_UTIL_TABLE_H_
