#include "rt/runtime.h"

#include <pthread.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"

namespace apichecker::rt {
namespace {

// Worker threads mark themselves so Post() from inside a task lands on the
// poster's own run queue (locality) instead of the round-robin spray.
thread_local Runtime* tls_runtime = nullptr;
thread_local size_t tls_worker = 0;

obs::Counter& TasksTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter(obs::names::kRtTasksTotal);
  return c;
}
obs::Counter& StealsTotal() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter(obs::names::kRtStealsTotal);
  return c;
}
obs::Gauge& QueueDepth() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Default().gauge(obs::names::kRtQueueDepth);
  return g;
}
obs::Counter& TimersScheduled() {
  static obs::Counter& c = obs::MetricsRegistry::Default().counter(
      obs::names::kRtTimersScheduledTotal);
  return c;
}
obs::Counter& TimersCancelled() {
  static obs::Counter& c = obs::MetricsRegistry::Default().counter(
      obs::names::kRtTimersCancelledTotal);
  return c;
}
obs::Histogram& TimerLagMs() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Default().histogram(obs::names::kRtTimerLagMs);
  return h;
}
obs::Counter& PollWakeups() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter(obs::names::kRtPollWakeupsTotal);
  return c;
}
obs::Counter& FdWatches() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().counter(obs::names::kRtFdWatchesTotal);
  return c;
}

}  // namespace

void SetCurrentThreadName(const char* name) {
  char truncated[16];
  std::snprintf(truncated, sizeof(truncated), "%s", name);
  (void)pthread_setname_np(pthread_self(), truncated);
}

size_t ProcessThreadCount() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  size_t threads = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Threads:", 8) == 0) {
      threads = static_cast<size_t>(std::strtoul(line + 8, nullptr, 10));
      break;
    }
  }
  std::fclose(f);
  return threads;
}

void NoteProcessThreadsPeak() {
  const size_t count = ProcessThreadCount();
  if (count == 0) return;
  obs::Gauge& peak = obs::MetricsRegistry::Default().gauge(
      obs::names::kRtProcessThreadsPeak);
  // Racy max is fine: the gauge is a monotonic high-water mark and samples
  // only ever push it up.
  if (static_cast<double>(count) > peak.value()) {
    peak.Set(static_cast<double>(count));
  }
}

bool CancelToken::Cancel() {
  if (cell_ == nullptr) return false;
  int expected = kPending;
  if (cell_->compare_exchange_strong(expected, kCancelled)) {
    TimersCancelled().Increment();
    if (on_cancel_) on_cancel_();
    return true;
  }
  return false;
}

bool CancelToken::fired() const {
  return cell_ != nullptr && cell_->load() == kFired;
}

// ---------------------------------------------------------------------------
// Strand

void Strand::Post(Task task) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (!active_) {
      active_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    auto self = shared_from_this();
    rt_->Post([self] { self->RunSome(); });
  }
}

void Strand::RunSome() {
  // Run a bounded burst, then yield the worker: one chatty strand must not
  // monopolize the executor.
  constexpr int kBurst = 16;
  for (int i = 0; i < kBurst; ++i) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        active_ = false;
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      active_ = false;
      return;
    }
  }
  auto self = shared_from_this();
  rt_->Post([self] { self->RunSome(); });
}

// ---------------------------------------------------------------------------
// Executor

struct Runtime::Worker {
  std::mutex mu;
  std::deque<Task> queue;
};

struct Runtime::TimerEntry {
  Clock::time_point when;
  uint64_t seq = 0;
  std::shared_ptr<std::atomic<int>> cell;
  std::shared_ptr<Task> task;

  // Min-heap on (when, seq): std::*_heap build max-heaps, so compare greater.
  bool operator<(const TimerEntry& other) const {
    if (when != other.when) return when > other.when;
    return seq > other.seq;
  }
};

Runtime::Runtime(RuntimeOptions options) {
  size_t workers = options.workers;
  if (workers == 0) {
    workers = std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  worker_threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

Runtime::~Runtime() { Shutdown(); }

void Runtime::Post(Task task) {
  if (task == nullptr) return;
  if (stopping_.load(std::memory_order_acquire) &&
      tls_runtime != this) {
    // After Shutdown() began, only draining tasks (which run on our own
    // workers) may still enqueue; outside posts are dropped.
    return;
  }
  size_t target;
  if (tls_runtime == this) {
    target = tls_worker;
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  QueueDepth().Set(static_cast<double>(pending_.load(std::memory_order_relaxed)));
  wake_cv_.notify_one();
}

bool Runtime::TryRunOne(size_t index) {
  Task task;
  {
    std::lock_guard<std::mutex> lock(workers_[index]->mu);
    if (!workers_[index]->queue.empty()) {
      task = std::move(workers_[index]->queue.front());
      workers_[index]->queue.pop_front();
    }
  }
  if (task == nullptr) {
    // Steal from the back of a victim's queue (the coldest task) so the
    // owner keeps cache-warm work at the front.
    for (size_t step = 1; step < workers_.size() && task == nullptr; ++step) {
      const size_t victim = (index + step) % workers_.size();
      std::lock_guard<std::mutex> lock(workers_[victim]->mu);
      if (!workers_[victim]->queue.empty()) {
        task = std::move(workers_[victim]->queue.back());
        workers_[victim]->queue.pop_back();
        StealsTotal().Increment();
      }
    }
    if (task == nullptr) return false;
  }
  pending_.fetch_sub(1, std::memory_order_relaxed);
  QueueDepth().Set(static_cast<double>(pending_.load(std::memory_order_relaxed)));
  TasksTotal().Increment();
  task();
  return true;
}

void Runtime::WorkerLoop(size_t index) {
  char name[16];
  std::snprintf(name, sizeof(name), "rt-worker-%zu", index);
  SetCurrentThreadName(name);
  tls_runtime = this;
  tls_worker = index;
  for (;;) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      break;
    }
    // Bounded wait: a task can land between the failed TryRunOne and this
    // wait, and its notify may race past us — the timeout bounds the miss.
    wake_cv_.wait_for(lock, std::chrono::milliseconds(50), [this] {
      return stopping_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
  tls_runtime = nullptr;
}

void Runtime::NotifyWorkers() { wake_cv_.notify_all(); }

// ---------------------------------------------------------------------------
// Timer wheel

CancelToken Runtime::PostAt(Clock::time_point when, Task task) {
  if (task == nullptr || stopping_.load(std::memory_order_acquire)) {
    return CancelToken();
  }
  auto cell = std::make_shared<std::atomic<int>>(CancelToken::kPending);
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    EnsureTimerThreadLocked();
    TimerEntry entry;
    entry.when = when;
    entry.seq = ++timer_seq_;
    entry.cell = cell;
    entry.task = std::make_shared<Task>(std::move(task));
    timer_heap_.push_back(std::move(entry));
    std::push_heap(timer_heap_.begin(), timer_heap_.end());
  }
  TimersScheduled().Increment();
  timer_cv_.notify_one();
  return CancelToken(std::move(cell));
}

CancelToken Runtime::PostAfter(std::chrono::milliseconds delay, Task task) {
  return PostAt(Clock::now() + delay, std::move(task));
}

void Runtime::EnsureTimerThreadLocked() {
  if (timer_started_) return;
  timer_started_ = true;
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

void Runtime::TimerLoop() {
  SetCurrentThreadName("rt-timer");
  // Mark as internal: dispatches from the wheel may Post during a shutdown
  // drain (the wheel is joined before the workers, so the task still runs).
  tls_runtime = this;
  std::unique_lock<std::mutex> lock(timer_mu_);
  while (!stopping_.load(std::memory_order_acquire)) {
    if (timer_heap_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const Clock::time_point next = timer_heap_.front().when;
    const Clock::time_point now = Clock::now();
    if (now < next) {
      timer_cv_.wait_until(lock, next);
      continue;
    }
    // Coalesced sweep: every deadline at or before `now` fires in this one
    // wakeup, popped in (deadline, post-order) order.
    std::vector<TimerEntry> due;
    while (!timer_heap_.empty() && timer_heap_.front().when <= now) {
      std::pop_heap(timer_heap_.begin(), timer_heap_.end());
      due.push_back(std::move(timer_heap_.back()));
      timer_heap_.pop_back();
    }
    lock.unlock();
    for (TimerEntry& entry : due) {
      int expected = CancelToken::kPending;
      if (!entry.cell->compare_exchange_strong(expected, CancelToken::kFired)) {
        continue;  // Cancelled while queued.
      }
      TimerLagMs().Observe(
          std::chrono::duration<double, std::milli>(now - entry.when).count());
      Post(std::move(*entry.task));
    }
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// Io poller

CancelToken Runtime::PostFd(int fd, Task task) {
  if (task == nullptr || fd < 0 || stopping_.load(std::memory_order_acquire)) {
    return CancelToken();
  }
  auto cell = std::make_shared<std::atomic<int>>(CancelToken::kPending);
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    EnsurePollerThreadLocked();
    if (epoll_fd_ < 0) return CancelToken();
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN | EPOLLRDHUP | EPOLLONESHOT;
    event.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      if (errno == EEXIST) {
        // Contract violation: one active watch per fd.
        return CancelToken();
      }
      // Not pollable (regular file, etc.): it is always "ready" — run now.
      cell->store(CancelToken::kFired);
      Post(std::move(task));
      return CancelToken(std::move(cell));
    }
    FdWatch watch;
    watch.task = std::move(task);
    watch.cell = cell;
    watches_.emplace_back(fd, std::move(watch));
  }
  FdWatches().Increment();
  // The on-cancel hook deregisters the fd synchronously, so a successful
  // Cancel() lets the owner close the fd without racing the poller (and
  // without a stale EPOLL_CTL_DEL landing on a reused fd number later).
  return CancelToken(cell,
                     [this, fd, cell] { ReapCancelledFdWatch(fd, cell); });
}

void Runtime::ReapCancelledFdWatch(
    int fd, const std::shared_ptr<std::atomic<int>>& cell) {
  std::lock_guard<std::mutex> lock(poll_mu_);
  for (auto it = watches_.begin(); it != watches_.end(); ++it) {
    if (it->first == fd && it->second.cell == cell) {
      watches_.erase(it);
      if (epoll_fd_ >= 0) {
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
      }
      return;
    }
  }
  // Not found: the poller already took (and deregistered) this watch inside
  // its own poll_mu_ critical section, which completed before we acquired
  // the lock — the fd is guaranteed out of the epoll set either way.
}

void Runtime::EnsurePollerThreadLocked() {
  if (poll_started_) return;
  poll_started_ = true;
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_event_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ >= 0 && wake_event_fd_ >= 0) {
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = wake_event_fd_;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_event_fd_, &event);
  }
  poll_thread_ = std::thread([this] { PollerLoop(); });
}

void Runtime::PollerLoop() {
  SetCurrentThreadName("rt-poller");
  tls_runtime = this;  // Same drain guarantee as the timer thread.
  if (epoll_fd_ < 0) return;
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    PollWakeups().Increment();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_event_fd_) {
        uint64_t drained = 0;
        while (read(wake_event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      FdWatch watch;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(poll_mu_);
        for (auto it = watches_.begin(); it != watches_.end(); ++it) {
          if (it->first == fd) {
            watch = std::move(it->second);
            watches_.erase(it);
            found = true;
            break;
          }
        }
        // DEL only when this loop owned the removal: an absent entry means a
        // racing Cancel() already deregistered the fd, and a blind DEL here
        // could hit a reused fd number carrying a fresh watch.
        if (found) {
          epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
        }
      }
      if (!found) continue;
      int expected = CancelToken::kPending;
      if (watch.cell->compare_exchange_strong(expected, CancelToken::kFired)) {
        Post(std::move(watch.task));
      }
    }
  }
}

std::shared_ptr<Strand> Runtime::MakeStrand() {
  return std::shared_ptr<Strand>(new Strand(this));
}

// ---------------------------------------------------------------------------
// Shutdown: timers and watches die first (their callbacks must not land on a
// drained executor), then the workers drain every run queue and exit.

void Runtime::Shutdown() {
  std::call_once(shutdown_once_, [this] {
    stopping_.store(true, std::memory_order_release);

    // Timer wheel: cancel everything pending, wake, join.
    {
      std::lock_guard<std::mutex> lock(timer_mu_);
      for (TimerEntry& entry : timer_heap_) {
        int expected = CancelToken::kPending;
        entry.cell->compare_exchange_strong(expected, CancelToken::kCancelled);
      }
      timer_heap_.clear();
    }
    timer_cv_.notify_all();
    if (timer_thread_.joinable()) timer_thread_.join();

    // Poller: cancel watches, wake via the eventfd, join, close.
    {
      std::lock_guard<std::mutex> lock(poll_mu_);
      for (auto& [fd, watch] : watches_) {
        int expected = CancelToken::kPending;
        watch.cell->compare_exchange_strong(expected, CancelToken::kCancelled);
      }
      watches_.clear();
      if (wake_event_fd_ >= 0) {
        const uint64_t one = 1;
        (void)!write(wake_event_fd_, &one, sizeof(one));
      }
    }
    if (poll_thread_.joinable()) poll_thread_.join();
    {
      std::lock_guard<std::mutex> lock(poll_mu_);
      if (epoll_fd_ >= 0) close(epoll_fd_);
      if (wake_event_fd_ >= 0) close(wake_event_fd_);
      epoll_fd_ = -1;
      wake_event_fd_ = -1;
    }

    // Executor: workers exit once every queue is drained; tasks posted by
    // draining tasks still run.
    NotifyWorkers();
    for (std::thread& thread : worker_threads_) {
      if (thread.joinable()) thread.join();
    }
  });
}

}  // namespace apichecker::rt
