// The unified async runtime: one executor for timers, I/O readiness, and
// farm dispatch. Before this layer existed every subsystem owned threads
// ad-hoc — a scheduler loop, per-farm dispatchers, fabric monitor/heartbeat
// threads, one gateway thread per upload connection — so process thread
// count grew with connections, not cores. rt::Runtime collapses them into:
//
//   - an Executor: N worker threads (~ hardware concurrency, floored so
//     blocking farm dispatch can never starve short tasks) with per-worker
//     work-stealing run queues behind Post(),
//   - a TimerWheel: one lazily-started timer thread with coalesced deadlines
//     and shared-state cancellation tokens behind PostAt()/PostAfter(),
//   - an IoPoller: one lazily-started epoll thread watching nonblocking (or
//     readiness-signalled blocking) fabric sockets behind PostFd().
//
// Timer and fd callbacks never run on the timer/poller threads — expiry and
// readiness both post the callback to the executor, so the wheel and the
// poller stay responsive no matter how slow a callback is. Strands layer
// serialized task queues on top of the executor for state machines (one per
// farm queue, one per gateway connection) that need mutual exclusion without
// a dedicated thread.
//
// Instrumented as apichecker_rt_*: task/steal counters, a run-queue depth
// gauge, timer lag, poll wakeups. Every thread is named via
// pthread_setname_np (rt-worker-N / rt-timer / rt-poller) so TSan reports,
// perf profiles, and /proc/<pid>/task are attributable.
//
// Shutdown contract (the teardown sequence ends here: gateway -> scheduler
// -> pool -> fabric -> store -> rt): pending timers and fd watches are
// cancelled (their callbacks never fire), then the workers drain every run
// queue — tasks already posted, including tasks posted by draining tasks,
// still run — and exit. Shutdown() is idempotent; Post() after it is a no-op.

#ifndef APICHECKER_RT_RUNTIME_H_
#define APICHECKER_RT_RUNTIME_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace apichecker::rt {

using Clock = std::chrono::steady_clock;
using Task = std::function<void()>;

// Names the calling thread (pthread_setname_np; truncated to the kernel's
// 15-character limit). Best-effort — naming failures are ignored.
void SetCurrentThreadName(const char* name);

// `Threads:` from /proc/self/status — the process's live thread count as the
// kernel sees it. Returns 0 when unavailable. The gateway samples this at
// accept time into apichecker_rt_process_threads_peak so the CI smoke can
// assert the count stays flat as upload-client count doubles.
size_t ProcessThreadCount();

// Samples ProcessThreadCount() into the peak gauge (monotonic max).
void NoteProcessThreadsPeak();

// Cancellation handle for PostAt/PostAfter/PostFd. Copyable; all copies
// share one fire-or-cancel cell, so Cancel() and expiry race exactly once.
class CancelToken {
 public:
  CancelToken() = default;

  // True when the callback had not fired (and now never will). False when it
  // already fired, is currently running, or the token is empty/cancelled.
  // For fd watches, a successful Cancel() also deregisters the fd from the
  // poller before returning: once Cancel() returns (true OR false), the
  // runtime will never touch the fd again, so the owner may close it.
  bool Cancel();

  // True when the callback has started (or finished) running.
  bool fired() const;

  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Runtime;
  enum : int { kPending = 0, kFired = 1, kCancelled = 2 };
  explicit CancelToken(std::shared_ptr<std::atomic<int>> cell)
      : cell_(std::move(cell)) {}
  CancelToken(std::shared_ptr<std::atomic<int>> cell,
              std::function<void()> on_cancel)
      : cell_(std::move(cell)), on_cancel_(std::move(on_cancel)) {}
  std::shared_ptr<std::atomic<int>> cell_;
  // Runs after a winning Cancel() CAS; fd watches use it to deregister the
  // fd from epoll synchronously. Must not be invoked after the owning
  // Runtime is destroyed — the layering contract (owners cancel before the
  // runtime shuts down) guarantees that, and post-Shutdown the CAS can
  // never win anyway (Shutdown cancels every pending cell).
  std::function<void()> on_cancel_;
};

class Runtime;

// A serialized task queue on the executor: tasks posted to one strand run in
// FIFO order, never concurrently, on whichever worker is free — a state
// machine gets mutual exclusion without owning a thread. Destroying the
// shared_ptr with tasks still queued lets them finish (tasks hold the strand
// alive).
class Strand : public std::enable_shared_from_this<Strand> {
 public:
  void Post(Task task);

 private:
  friend class Runtime;
  explicit Strand(Runtime* rt) : rt_(rt) {}
  void RunSome();

  Runtime* rt_;
  std::mutex mu_;
  std::deque<Task> queue_;
  bool active_ = false;
};

struct RuntimeOptions {
  // Executor worker threads; 0 selects max(2, hardware_concurrency()).
  // Callers whose tasks block (farm dispatch holds a worker for the whole
  // emulation or RPC) must size this past their blocking-task count — the
  // service uses max(requested, num_farms * 2 + 4).
  size_t workers = 0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs `task` on some executor worker. No-op after Shutdown().
  void Post(Task task);

  // Runs `task` on the executor at/after `when`. Deadlines that land in the
  // same wheel sweep are coalesced into one wakeup and fire in deadline
  // order. The returned token cancels a not-yet-fired timer.
  CancelToken PostAt(Clock::time_point when, Task task);
  CancelToken PostAfter(std::chrono::milliseconds delay, Task task);

  // One-shot read-readiness watch: when `fd` becomes readable (or hits
  // EOF/error — the callback cannot tell; it must read to find out), `task`
  // runs on the executor. At most one active watch per fd; re-arm by calling
  // PostFd again from the callback. Cancel() prevents an unfired callback.
  CancelToken PostFd(int fd, Task task);

  std::shared_ptr<Strand> MakeStrand();

  // Cancels pending timers and watches, drains the run queues, joins every
  // thread. Idempotent; safe to call with tasks still posting tasks.
  void Shutdown();

  size_t workers() const { return workers_.size(); }

 private:
  friend class Strand;
  struct Worker;
  struct TimerEntry;

  void WorkerLoop(size_t index);
  bool TryRunOne(size_t index);
  void TimerLoop();
  void PollerLoop();
  void EnsureTimerThreadLocked();
  void EnsurePollerThreadLocked();
  void ReapCancelledFdWatch(int fd,
                            const std::shared_ptr<std::atomic<int>>& cell);
  void NotifyWorkers();

  // -- executor --
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> worker_threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> next_queue_{0};
  std::atomic<int64_t> pending_{0};

  // -- timer wheel --
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::thread timer_thread_;
  bool timer_started_ = false;
  uint64_t timer_seq_ = 0;
  std::vector<TimerEntry> timer_heap_;

  // -- io poller --
  std::mutex poll_mu_;
  std::thread poll_thread_;
  bool poll_started_ = false;
  int epoll_fd_ = -1;
  int wake_event_fd_ = -1;
  struct FdWatch {
    Task task;
    std::shared_ptr<std::atomic<int>> cell;
  };
  // fd -> watch; at most one per fd by contract.
  std::vector<std::pair<int, FdWatch>> watches_;

  std::once_flag shutdown_once_;
};

}  // namespace apichecker::rt

#endif  // APICHECKER_RT_RUNTIME_H_
