// Immutable, ref-counted APK payload. Every stage of the serving stack
// (shard queue -> scheduler -> farm-pool worker -> verdict store) passes the
// same underlying buffer by handle, so an APK is allocated exactly once at
// ingest and never copied again — the frontend property the paper needs to
// vet ~10K market submissions/day without the intake becoming the bottleneck.
//
// Ownership rules:
//  - The bytes and the digest are set at construction and never mutated.
//  - Copying an ApkBlob bumps a refcount; the buffer dies with the last handle.
//  - The SHA-1 digest is computed exactly once per blob (incrementally when
//    the blob is streamed in; see stream_reader.h) and cached alongside the
//    bytes, so downstream stages never re-hash.
// A process-wide gauge tracks resident blob bytes plus its high-water mark
// (apichecker_ingest_blob_pool_bytes / _peak_bytes).
//
// Spill-to-disk: with a spill threshold configured, payloads at or above it
// are written to an unlinked temp file and handed back as a read-only mmap —
// same handle semantics, same zero-copy span, but the pages are file-backed
// and evictable, so the heap blob-pool gauge BOUNDS resident set size under a
// submission storm instead of merely tracking it. Spilled bytes are counted
// by their own gauge (apichecker_ingest_spilled_blob_bytes), never by the
// pool gauge — the pool watermarks in serve/overload.h gate on heap bytes.

#ifndef APICHECKER_INGEST_APK_BLOB_H_
#define APICHECKER_INGEST_APK_BLOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace apichecker::ingest {

class ApkBlob {
 public:
  struct SpillConfig {
    // Payloads of size >= threshold_bytes spill to disk; 0 disables spilling.
    size_t threshold_bytes = 0;
    // Directory for the (immediately unlinked) temp files; empty = /tmp.
    std::string dir;
  };

  // Decides whether a spill write fails, by 1-based write ordinal. Test-only
  // seam for wiring a store::IoFaultInjector-style plan into the spill path;
  // a failed (or faulted) spill falls back to the heap, never loses bytes.
  using SpillWriteFaultHook = std::function<bool(uint64_t ordinal)>;

  // Empty handle: no bytes, empty digest, use_count() == 0.
  ApkBlob() = default;

  // Hashes `bytes` (exactly once) and takes ownership. Counts one
  // apichecker_serve_hash_ops_total and one apichecker_ingest_blobs_total.
  static ApkBlob FromBytes(std::vector<uint8_t> bytes);

  std::span<const uint8_t> bytes() const;
  // 40-char lowercase SHA-1 hex of bytes(); empty string for an empty handle.
  const std::string& digest() const;
  size_t size() const;
  bool empty() const { return rep_ == nullptr; }
  long use_count() const { return rep_.use_count(); }
  // True when the payload lives in an mmap'd temp file instead of the heap.
  bool spilled() const;

  // Live HEAP bytes across all blobs in the process, and the high-water mark.
  // Spilled payloads are excluded by design (they are reclaimable pages).
  static uint64_t PoolBytes();
  static uint64_t PoolPeakBytes();
  // Live mmap'd (spilled) payload bytes across all blobs.
  static uint64_t SpilledBytes();

  // Restarts the heap high-water mark from the current level — lets a bench
  // pass measure its own peak instead of inheriting an earlier pass's.
  static void ResetPoolPeakBytes();

  // Process-wide spill policy. Thread-safe; affects blobs created after the
  // call. Returns the previous config.
  static SpillConfig SetSpillConfig(SpillConfig config);
  static SpillConfig GetSpillConfig();
  // Installs (or clears, with nullptr) the spill write fault hook.
  static void SetSpillWriteFaultHook(SpillWriteFaultHook hook);

 private:
  friend class BlobBuilder;
  struct Rep;
  explicit ApkBlob(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  // Shared creation funnel: applies the spill policy, falls back to the heap
  // on any spill failure.
  static std::shared_ptr<const Rep> MakeRep(std::vector<uint8_t> bytes,
                                            std::string digest);

  std::shared_ptr<const Rep> rep_;
};

// Internal assembly helper for readers that already streamed the bytes
// through an incremental hasher: builds a blob without re-hashing.
class BlobBuilder {
 public:
  static ApkBlob Finish(std::vector<uint8_t> bytes, std::string digest_hex);
};

}  // namespace apichecker::ingest

#endif  // APICHECKER_INGEST_APK_BLOB_H_
