// Immutable, ref-counted APK payload. Every stage of the serving stack
// (shard queue -> scheduler -> farm-pool worker -> verdict store) passes the
// same underlying buffer by handle, so an APK is allocated exactly once at
// ingest and never copied again — the frontend property the paper needs to
// vet ~10K market submissions/day without the intake becoming the bottleneck.
//
// Ownership rules:
//  - The bytes and the digest are set at construction and never mutated.
//  - Copying an ApkBlob bumps a refcount; the buffer dies with the last handle.
//  - The SHA-1 digest is computed exactly once per blob (incrementally when
//    the blob is streamed in; see stream_reader.h) and cached alongside the
//    bytes, so downstream stages never re-hash.
// A process-wide gauge tracks resident blob bytes plus its high-water mark
// (apichecker_ingest_blob_pool_bytes / _peak_bytes).

#ifndef APICHECKER_INGEST_APK_BLOB_H_
#define APICHECKER_INGEST_APK_BLOB_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace apichecker::ingest {

class ApkBlob {
 public:
  // Empty handle: no bytes, empty digest, use_count() == 0.
  ApkBlob() = default;

  // Hashes `bytes` (exactly once) and takes ownership. Counts one
  // apichecker_serve_hash_ops_total and one apichecker_ingest_blobs_total.
  static ApkBlob FromBytes(std::vector<uint8_t> bytes);

  std::span<const uint8_t> bytes() const;
  // 40-char lowercase SHA-1 hex of bytes(); empty string for an empty handle.
  const std::string& digest() const;
  size_t size() const;
  bool empty() const { return rep_ == nullptr; }
  long use_count() const { return rep_.use_count(); }

  // Live bytes across all blobs in the process, and the high-water mark.
  static uint64_t PoolBytes();
  static uint64_t PoolPeakBytes();

 private:
  friend class BlobBuilder;
  struct Rep;
  explicit ApkBlob(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

// Internal assembly helper for readers that already streamed the bytes
// through an incremental hasher: builds a blob without re-hashing.
class BlobBuilder {
 public:
  static ApkBlob Finish(std::vector<uint8_t> bytes, std::string digest_hex);
};

}  // namespace apichecker::ingest

#endif  // APICHECKER_INGEST_APK_BLOB_H_
