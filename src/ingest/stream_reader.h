// Chunked APK intake. An ApkStreamReader yields the payload in bounded
// chunks (file- or memory-backed); ReadApkBlob() drains one through a
// streaming util::Sha1Hasher so the digest is ready the moment the last
// chunk lands — the submitter never holds two copies of the APK and never
// makes a second hashing pass over it. Chunk size is configurable
// (kDefaultChunkBytes, CLI --chunk-kb) so operators can trade syscall count
// against resident buffer size for very large APKs.

#ifndef APICHECKER_INGEST_STREAM_READER_H_
#define APICHECKER_INGEST_STREAM_READER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ingest/apk_blob.h"
#include "util/result.h"

namespace apichecker::util {
class Sha1Hasher;
}  // namespace apichecker::util

namespace apichecker::ingest {

inline constexpr size_t kDefaultChunkBytes = 64 * 1024;

// Pull-based byte source. Read() fills up to out.size() bytes and returns the
// number written; 0 means end of stream. Implementations are single-pass.
class ApkStreamReader {
 public:
  virtual ~ApkStreamReader() = default;

  virtual util::Result<size_t> Read(std::span<uint8_t> out) = 0;

  // Total payload size when known up front (lets the drain pre-reserve).
  virtual std::optional<size_t> SizeHint() const { return std::nullopt; }
};

// Replays an in-memory buffer chunk by chunk (tests, synthetic traces, and
// network frontends that already hold the upload buffer).
class MemoryStreamReader : public ApkStreamReader {
 public:
  explicit MemoryStreamReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  util::Result<size_t> Read(std::span<uint8_t> out) override;
  std::optional<size_t> SizeHint() const override { return bytes_.size(); }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
};

// Streams a file from disk without ever mapping it whole.
class FileStreamReader : public ApkStreamReader {
 public:
  explicit FileStreamReader(std::string path);
  ~FileStreamReader() override;

  FileStreamReader(const FileStreamReader&) = delete;
  FileStreamReader& operator=(const FileStreamReader&) = delete;

  util::Result<size_t> Read(std::span<uint8_t> out) override;
  std::optional<size_t> SizeHint() const override;

 private:
  std::string path_;
  void* file_ = nullptr;  // FILE*, kept out of the header.
  std::optional<size_t> size_hint_;
};

// Push-based dual of ReadApkBlob for event-driven intake (the readiness-
// driven gateway): Append() each chunk as it arrives off the wire — hashing
// incrementally and counting the same apichecker_ingest_* bytes/chunks
// series — then Finish() to get the blob (one
// apichecker_serve_hash_ops_total, spill policy applied). Same invariants as
// the pull path: exactly one SHA-1 pass and one buffer per APK, digest ready
// the moment the last chunk lands. Single-use; not thread-safe (the owner
// serializes on its connection strand).
class BlobAssembler {
 public:
  // `size_hint` pre-reserves the buffer (the upload's declared length).
  explicit BlobAssembler(std::optional<size_t> size_hint = std::nullopt);
  ~BlobAssembler();  // Out of line: Sha1Hasher is forward-declared here.

  void Append(std::span<const uint8_t> chunk);
  ApkBlob Finish();

  uint64_t bytes_appended() const { return appended_; }

 private:
  std::vector<uint8_t> bytes_;
  std::unique_ptr<util::Sha1Hasher> hasher_;
  uint64_t appended_ = 0;
};

// Drains `reader` in `chunk_bytes` slices, hashing incrementally, and returns
// the finished blob. Exactly one SHA-1 pass (apichecker_serve_hash_ops_total)
// and one allocation per APK; bytes/chunks are accounted in the
// apichecker_ingest_* counters.
util::Result<ApkBlob> ReadApkBlob(ApkStreamReader& reader,
                                  size_t chunk_bytes = kDefaultChunkBytes);

util::Result<ApkBlob> ReadApkBlobFromFile(const std::string& path,
                                          size_t chunk_bytes = kDefaultChunkBytes);

}  // namespace apichecker::ingest

#endif  // APICHECKER_INGEST_STREAM_READER_H_
