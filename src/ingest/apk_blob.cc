#include "ingest/apk_blob.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/logging.h"
#include "util/sha1.h"

namespace apichecker::ingest {

namespace {

std::atomic<uint64_t> g_pool_bytes{0};
std::atomic<uint64_t> g_pool_peak_bytes{0};
std::atomic<uint64_t> g_spilled_bytes{0};

// Spill policy + fault hook, guarded by one mutex (consulted per creation).
std::mutex g_spill_mu;
ApkBlob::SpillConfig g_spill_config;
ApkBlob::SpillWriteFaultHook g_spill_fault_hook;
std::atomic<uint64_t> g_spill_ordinal{0};

void TrackAlloc(size_t bytes) {
  const uint64_t now = g_pool_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = g_pool_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_pool_peak_bytes.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  auto& registry = obs::MetricsRegistry::Default();
  registry.gauge(obs::names::kIngestBlobPoolBytes).Set(static_cast<double>(now));
  registry.gauge(obs::names::kIngestBlobPoolPeakBytes)
      .Set(static_cast<double>(g_pool_peak_bytes.load(std::memory_order_relaxed)));
}

void TrackFree(size_t bytes) {
  const uint64_t now = g_pool_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  obs::MetricsRegistry::Default()
      .gauge(obs::names::kIngestBlobPoolBytes)
      .Set(static_cast<double>(now));
}

void TrackSpillAlloc(size_t bytes) {
  const uint64_t now =
      g_spilled_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  obs::MetricsRegistry::Default()
      .gauge(obs::names::kIngestSpilledBlobBytes)
      .Set(static_cast<double>(now));
}

void TrackSpillFree(size_t bytes) {
  const uint64_t now =
      g_spilled_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  obs::MetricsRegistry::Default()
      .gauge(obs::names::kIngestSpilledBlobBytes)
      .Set(static_cast<double>(now));
}

// Writes `bytes` to an immediately-unlinked temp file under `dir` and maps it
// read-only. Returns the mapping, or nullptr on any failure (caller falls
// back to the heap — a storm must degrade to the old behavior, not drop the
// payload).
const uint8_t* SpillToDisk(const std::vector<uint8_t>& bytes,
                           const std::string& dir) {
  const uint64_t ordinal = g_spill_ordinal.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    ApkBlob::SpillWriteFaultHook hook;
    {
      std::lock_guard<std::mutex> lock(g_spill_mu);
      hook = g_spill_fault_hook;
    }
    if (hook && hook(ordinal)) {
      errno = EIO;
      return nullptr;  // Injected temp-file write fault.
    }
  }

  std::string path = (dir.empty() ? std::string("/tmp") : dir) +
                     "/apichecker-spill-XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) {
    return nullptr;
  }
  // Unlink first: the file is anonymous from here on — no cleanup to leak on
  // crash, the pages die with the last mapping.
  ::unlink(path.c_str());

  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return nullptr;
    }
    written += static_cast<size_t>(n);
  }

  void* map = ::mmap(nullptr, bytes.size(), PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping keeps the (unlinked) file alive.
  if (map == MAP_FAILED) {
    return nullptr;
  }
  return static_cast<const uint8_t*>(map);
}

}  // namespace

struct ApkBlob::Rep {
  // Exactly one of the two storage modes holds the payload: `heap` (empty
  // when spilled) or `map`/`map_len` (mmap of an unlinked temp file).
  std::vector<uint8_t> heap;
  const uint8_t* map = nullptr;
  size_t map_len = 0;
  std::string digest;

  // Heap-resident payload.
  Rep(std::vector<uint8_t> b, std::string d)
      : heap(std::move(b)), digest(std::move(d)) {
    TrackAlloc(heap.size());
  }

  // Spilled payload (takes ownership of the mapping).
  Rep(const uint8_t* m, size_t len, std::string d)
      : map(m), map_len(len), digest(std::move(d)) {
    TrackSpillAlloc(map_len);
  }

  ~Rep() {
    if (map != nullptr) {
      ::munmap(const_cast<uint8_t*>(map), map_len);
      TrackSpillFree(map_len);
    } else {
      TrackFree(heap.size());
    }
  }

  std::span<const uint8_t> span() const {
    if (map != nullptr) {
      return {map, map_len};
    }
    return heap;
  }
  size_t size() const { return map != nullptr ? map_len : heap.size(); }

  Rep(const Rep&) = delete;
  Rep& operator=(const Rep&) = delete;
};

std::shared_ptr<const ApkBlob::Rep> ApkBlob::MakeRep(std::vector<uint8_t> bytes,
                                                     std::string digest) {
  ApkBlob::SpillConfig config;
  {
    std::lock_guard<std::mutex> lock(g_spill_mu);
    config = g_spill_config;
  }
  if (config.threshold_bytes > 0 && bytes.size() >= config.threshold_bytes &&
      !bytes.empty()) {
    if (const uint8_t* map = SpillToDisk(bytes, config.dir)) {
      obs::MetricsRegistry::Default()
          .counter(obs::names::kIngestBlobsSpilledTotal)
          .Increment();
      return std::make_shared<const ApkBlob::Rep>(map, bytes.size(),
                                                  std::move(digest));
    }
    obs::MetricsRegistry::Default()
        .counter(obs::names::kIngestSpillFailuresTotal)
        .Increment();
    APICHECKER_LOG(Warning) << "blob spill failed (" << std::strerror(errno)
                            << "); keeping " << bytes.size()
                            << " bytes on the heap";
  }
  return std::make_shared<const ApkBlob::Rep>(std::move(bytes), std::move(digest));
}

ApkBlob ApkBlob::FromBytes(std::vector<uint8_t> bytes) {
  std::string digest = util::Sha1Hex(bytes);
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kServeHashOpsTotal).Increment();
  registry.counter(obs::names::kIngestBlobsTotal).Increment();
  return ApkBlob(MakeRep(std::move(bytes), std::move(digest)));
}

std::span<const uint8_t> ApkBlob::bytes() const {
  if (!rep_) return {};
  return rep_->span();
}

const std::string& ApkBlob::digest() const {
  static const std::string kEmpty;
  return rep_ ? rep_->digest : kEmpty;
}

size_t ApkBlob::size() const { return rep_ ? rep_->size() : 0; }

bool ApkBlob::spilled() const { return rep_ != nullptr && rep_->map != nullptr; }

uint64_t ApkBlob::PoolBytes() { return g_pool_bytes.load(std::memory_order_relaxed); }

uint64_t ApkBlob::PoolPeakBytes() {
  return g_pool_peak_bytes.load(std::memory_order_relaxed);
}

uint64_t ApkBlob::SpilledBytes() {
  return g_spilled_bytes.load(std::memory_order_relaxed);
}

void ApkBlob::ResetPoolPeakBytes() {
  const uint64_t now = g_pool_bytes.load(std::memory_order_relaxed);
  g_pool_peak_bytes.store(now, std::memory_order_relaxed);
  obs::MetricsRegistry::Default()
      .gauge(obs::names::kIngestBlobPoolPeakBytes)
      .Set(static_cast<double>(now));
}

ApkBlob::SpillConfig ApkBlob::SetSpillConfig(SpillConfig config) {
  std::lock_guard<std::mutex> lock(g_spill_mu);
  std::swap(g_spill_config, config);
  return config;
}

ApkBlob::SpillConfig ApkBlob::GetSpillConfig() {
  std::lock_guard<std::mutex> lock(g_spill_mu);
  return g_spill_config;
}

void ApkBlob::SetSpillWriteFaultHook(SpillWriteFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_spill_mu);
  g_spill_fault_hook = std::move(hook);
}

ApkBlob BlobBuilder::Finish(std::vector<uint8_t> bytes, std::string digest_hex) {
  obs::MetricsRegistry::Default().counter(obs::names::kIngestBlobsTotal).Increment();
  return ApkBlob(ApkBlob::MakeRep(std::move(bytes), std::move(digest_hex)));
}

}  // namespace apichecker::ingest
