#include "ingest/apk_blob.h"

#include <atomic>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/sha1.h"

namespace apichecker::ingest {

namespace {

std::atomic<uint64_t> g_pool_bytes{0};
std::atomic<uint64_t> g_pool_peak_bytes{0};

void TrackAlloc(size_t bytes) {
  const uint64_t now = g_pool_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = g_pool_peak_bytes.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_pool_peak_bytes.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  auto& registry = obs::MetricsRegistry::Default();
  registry.gauge(obs::names::kIngestBlobPoolBytes).Set(static_cast<double>(now));
  registry.gauge(obs::names::kIngestBlobPoolPeakBytes)
      .Set(static_cast<double>(g_pool_peak_bytes.load(std::memory_order_relaxed)));
}

void TrackFree(size_t bytes) {
  const uint64_t now = g_pool_bytes.fetch_sub(bytes, std::memory_order_relaxed) - bytes;
  obs::MetricsRegistry::Default()
      .gauge(obs::names::kIngestBlobPoolBytes)
      .Set(static_cast<double>(now));
}

}  // namespace

struct ApkBlob::Rep {
  std::vector<uint8_t> bytes;
  std::string digest;

  Rep(std::vector<uint8_t> b, std::string d)
      : bytes(std::move(b)), digest(std::move(d)) {
    TrackAlloc(bytes.size());
  }
  ~Rep() { TrackFree(bytes.size()); }

  Rep(const Rep&) = delete;
  Rep& operator=(const Rep&) = delete;
};

ApkBlob ApkBlob::FromBytes(std::vector<uint8_t> bytes) {
  std::string digest = util::Sha1Hex(bytes);
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kServeHashOpsTotal).Increment();
  registry.counter(obs::names::kIngestBlobsTotal).Increment();
  return ApkBlob(std::make_shared<const Rep>(std::move(bytes), std::move(digest)));
}

std::span<const uint8_t> ApkBlob::bytes() const {
  if (!rep_) return {};
  return rep_->bytes;
}

const std::string& ApkBlob::digest() const {
  static const std::string kEmpty;
  return rep_ ? rep_->digest : kEmpty;
}

size_t ApkBlob::size() const { return rep_ ? rep_->bytes.size() : 0; }

uint64_t ApkBlob::PoolBytes() { return g_pool_bytes.load(std::memory_order_relaxed); }

uint64_t ApkBlob::PoolPeakBytes() {
  return g_pool_peak_bytes.load(std::memory_order_relaxed);
}

ApkBlob BlobBuilder::Finish(std::vector<uint8_t> bytes, std::string digest_hex) {
  obs::MetricsRegistry::Default().counter(obs::names::kIngestBlobsTotal).Increment();
  return ApkBlob(
      std::make_shared<const ApkBlob::Rep>(std::move(bytes), std::move(digest_hex)));
}

}  // namespace apichecker::ingest
