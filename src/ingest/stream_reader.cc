#include "ingest/stream_reader.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/sha1.h"
#include "util/strings.h"

namespace apichecker::ingest {

util::Result<size_t> MemoryStreamReader::Read(std::span<uint8_t> out) {
  const size_t take = std::min(out.size(), bytes_.size() - offset_);
  if (take > 0) {
    std::memcpy(out.data(), bytes_.data() + offset_, take);
    offset_ += take;
  }
  return take;
}

FileStreamReader::FileStreamReader(std::string path) : path_(std::move(path)) {
  FILE* f = std::fopen(path_.c_str(), "rb");
  if (f != nullptr) {
    if (std::fseek(f, 0, SEEK_END) == 0) {
      const long end = std::ftell(f);
      if (end >= 0) size_hint_ = static_cast<size_t>(end);
      std::fseek(f, 0, SEEK_SET);
    }
  }
  file_ = f;
}

FileStreamReader::~FileStreamReader() {
  if (file_ != nullptr) std::fclose(static_cast<FILE*>(file_));
}

util::Result<size_t> FileStreamReader::Read(std::span<uint8_t> out) {
  if (file_ == nullptr) {
    return util::Err(util::StrFormat("cannot open %s", path_.c_str()));
  }
  FILE* f = static_cast<FILE*>(file_);
  const size_t n = std::fread(out.data(), 1, out.size(), f);
  if (n < out.size() && std::ferror(f)) {
    return util::Err(util::StrFormat("read error on %s", path_.c_str()));
  }
  return n;
}

std::optional<size_t> FileStreamReader::SizeHint() const { return size_hint_; }

BlobAssembler::BlobAssembler(std::optional<size_t> size_hint)
    : hasher_(std::make_unique<util::Sha1Hasher>()) {
  if (size_hint.has_value()) bytes_.reserve(*size_hint);
}

BlobAssembler::~BlobAssembler() = default;

void BlobAssembler::Append(std::span<const uint8_t> chunk) {
  if (chunk.empty()) return;
  hasher_->Update(chunk);
  bytes_.insert(bytes_.end(), chunk.begin(), chunk.end());
  appended_ += chunk.size();
  auto& registry = obs::MetricsRegistry::Default();
  registry.counter(obs::names::kIngestBytesStreamedTotal).Increment(chunk.size());
  registry.counter(obs::names::kIngestChunksTotal).Increment();
}

ApkBlob BlobAssembler::Finish() {
  obs::MetricsRegistry::Default().counter(obs::names::kServeHashOpsTotal).Increment();
  return BlobBuilder::Finish(std::move(bytes_), hasher_->FinalHex());
}

util::Result<ApkBlob> ReadApkBlob(ApkStreamReader& reader, size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = kDefaultChunkBytes;
  auto& registry = obs::MetricsRegistry::Default();
  obs::Counter& bytes_streamed =
      registry.counter(obs::names::kIngestBytesStreamedTotal);
  obs::Counter& chunks = registry.counter(obs::names::kIngestChunksTotal);

  std::vector<uint8_t> bytes;
  if (auto hint = reader.SizeHint()) {
    bytes.reserve(*hint);
  }
  std::vector<uint8_t> chunk(chunk_bytes);
  util::Sha1Hasher hasher;
  for (;;) {
    auto n = reader.Read(chunk);
    if (!n.ok()) {
      return util::Err(n.error());
    }
    if (*n == 0) break;
    hasher.Update(std::span<const uint8_t>(chunk.data(), *n));
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + *n);
    bytes_streamed.Increment(*n);
    chunks.Increment();
  }
  registry.counter(obs::names::kServeHashOpsTotal).Increment();
  return BlobBuilder::Finish(std::move(bytes), hasher.FinalHex());
}

util::Result<ApkBlob> ReadApkBlobFromFile(const std::string& path,
                                          size_t chunk_bytes) {
  FileStreamReader reader(path);
  return ReadApkBlob(reader, chunk_bytes);
}

}  // namespace apichecker::ingest
