#include "store/io_fault.h"

#include <algorithm>

namespace apichecker::store {

namespace {

bool Scripted(const std::vector<uint64_t>& ordinals, uint64_t ordinal) {
  return std::find(ordinals.begin(), ordinals.end(), ordinal) != ordinals.end();
}

}  // namespace

IoFaultInjector::IoFaultInjector(const IoFaultPlan& plan)
    : plan_(plan),
      write_rng_(util::SplitMix64(plan.seed ^ 0x57A7E)),
      fsync_rng_(util::SplitMix64(plan.seed ^ 0xF51C)) {}

AppendFault IoFaultInjector::OnAppend(uint64_t append_ordinal) {
  if (Scripted(plan_.crash_at, append_ordinal)) {
    return AppendFault::kCrash;
  }
  if (Scripted(plan_.short_write_at, append_ordinal)) {
    return AppendFault::kShortWrite;
  }
  // The Bernoulli stream advances once per append regardless of outcome, so a
  // given seed produces the same fault ordinals whatever the scripted lists
  // add on top.
  if (plan_.short_write_rate > 0.0 && write_rng_.Bernoulli(plan_.short_write_rate)) {
    return AppendFault::kShortWrite;
  }
  return AppendFault::kNone;
}

bool IoFaultInjector::FsyncFails(uint64_t fsync_ordinal) {
  if (Scripted(plan_.fsync_fail_at, fsync_ordinal)) {
    return true;
  }
  return plan_.fsync_failure_rate > 0.0 &&
         fsync_rng_.Bernoulli(plan_.fsync_failure_rate);
}

}  // namespace apichecker::store
