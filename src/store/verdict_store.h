// Durable, crash-safe verdict store backing the serve-layer digest cache.
// The paper's deployment depends on verdicts surviving vetting-server
// restarts and the monthly model-evolution cycle (§6); without persistence a
// restart re-emulates the entire hot set — exactly the cost the digest cache
// exists to avoid. The store is an append-only write-ahead log of checksummed
// records (digest -> verdict, model_version, timestamp, flags) in numbered
// segment files under one directory:
//
//   <dir>/segment-00000001.wal, segment-00000002.wal, ...
//
// Invariants:
//  * Appended-then-acknowledged is durable per the fsync policy: every-record
//    fsyncs each append, group-commit fsyncs every N appends (and on Flush/
//    rotation/close), os-buffered leaves flushing to the kernel.
//  * Last-writer-wins by record seq, not file position: every record carries
//    a store-wide monotone sequence number, so compaction may rewrite live
//    records into a new segment in any order and recovery still converges.
//  * Recovery tolerates torn writes: the newest segment truncates at the
//    first bad CRC (partial trailing frame = interrupted append). A sealed
//    segment that fails its scan is corruption, not a torn write — the file
//    is quarantined (renamed *.quarantined, excluded from replay) instead of
//    aborting the open; serving continues with what survives.
//  * Compaction rewrites live records into a fresh segment, fsyncs it, and
//    atomically publishes via rename before unlinking the segments it
//    replaces — a crash at any point leaves either the old or the new files,
//    and seq-based replay dedups any overlap.
//  * A fresh segment is opened on every Open(), so recovery never appends to
//    a possibly-torn tail.
//
// Fault injection (store::IoFaultPlan, mirroring emu::FaultPlan) is wired
// through Append/fsync so short writes, fsync failures, and mid-append
// crash-points are scriptable at exact record ordinals.

#ifndef APICHECKER_STORE_VERDICT_STORE_H_
#define APICHECKER_STORE_VERDICT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "store/io_fault.h"
#include "store/wal.h"
#include "util/result.h"

namespace apichecker::store {

enum class FsyncPolicy : uint8_t {
  kEveryRecord = 0,  // fsync after every append (max durability, slowest).
  kGroupCommit = 1,  // fsync every group_commit_records appends + on Flush.
  kOsBuffered = 2,   // never fsync explicitly except at rotation/close.
};

const char* FsyncPolicyName(FsyncPolicy policy);
util::Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name);

struct StoreConfig {
  std::string dir;  // Segment directory; created if missing. Empty = disabled
                    // (callers gate on this; Open rejects it).
  FsyncPolicy fsync_policy = FsyncPolicy::kGroupCommit;
  size_t group_commit_records = 32;  // Appends per fsync under kGroupCommit.
  size_t segment_max_bytes = 4u << 20;  // Rotation threshold for the active segment.
  // Sealed-segment count that triggers background compaction at rotation;
  // 0 disables auto-compaction (Compact() stays available).
  size_t auto_compact_segments = 8;
  IoFaultPlan fault_plan;
};

// What recovery found and did, kept for stats/reporting.
struct RecoveryOutcome {
  size_t segments_scanned = 0;
  size_t segments_quarantined = 0;
  uint64_t records_recovered = 0;   // Valid records replayed (duplicates included).
  uint64_t records_quarantined = 0; // Valid records inside quarantined segments
                                    // (excluded from replay: the file is distrusted).
  uint64_t tails_truncated = 0;     // Torn-tail truncations performed.
  uint64_t bytes_truncated = 0;
};

// What a segment export or import moved, for stats/tests/CLI reporting.
struct SegmentExchangeOutcome {
  size_t segments = 0;         // Files copied (export) or replayed (import).
  uint64_t records = 0;        // Frames copied (export) or applied (import).
  uint64_t superseded = 0;     // Import only: foreign records that lost the
                               // seq last-writer-wins race against a local
                               // record for the same digest.
  size_t skipped_unclean = 0;  // Import only: segments whose scan failed
                               // (skipped with a warning, never partially
                               //  applied past the first bad frame).
};

struct StoreStats {
  uint64_t appends = 0;         // Successful appends this process.
  uint64_t append_errors = 0;   // Failed appends (faults included).
  uint64_t fsyncs = 0;
  uint64_t fsync_failures = 0;
  uint64_t injected_faults = 0;
  uint64_t compactions = 0;
  size_t segments = 0;          // Live segment files (active included).
  uint64_t live_records = 0;    // Distinct digests (latest writer).
  uint64_t dead_records = 0;    // Superseded frames still on disk.
  bool failed = false;          // A crash-point fired: appends are rejected
                                // until the store is reopened.
  RecoveryOutcome recovery;
};

class VerdictStore {
 public:
  // Opens (creating the directory if needed), recovers every segment, and
  // starts a fresh active segment. Errors only on unusable configuration or
  // an unwritable directory — corrupt segments are quarantined, not fatal.
  static util::Result<std::unique_ptr<VerdictStore>> Open(StoreConfig config);

  ~VerdictStore();
  VerdictStore(const VerdictStore&) = delete;
  VerdictStore& operator=(const VerdictStore&) = delete;

  // Appends one record (seq is assigned internally; the caller's seq is
  // ignored). Thread-safe. An error means the record is NOT durable: short
  // writes are repaired in place and reported, an injected crash-point kills
  // the store until reopen, an fsync failure reports the uncertain flush.
  util::Result<bool> Append(VerdictRecord record);

  // Fsyncs any buffered appends (group-commit / os-buffered tail).
  util::Result<bool> Flush();

  // Rewrites live records into a new segment and unlinks the sealed segments
  // it replaces. Safe under concurrent Append.
  util::Result<bool> Compact();

  // Verdict-segment exchange: how two stores (e.g. the front-end behind each
  // fabric deployment) reconcile without sharing a directory.
  //
  // ExportSegments seals the active segment (fsynced first) and copies every
  // sealed segment file into `dest_dir` (created if missing), so the export
  // is a self-contained, replayable snapshot of everything durable here.
  // ImportSegments scans `src_dir` for segment-*.wal files and replays their
  // records through the same seq-LWW rule recovery uses, with one sharpening:
  // a foreign record is applied only when its digest is absent locally or its
  // seq is STRICTLY greater than the local record's — ties keep the local
  // copy, so importing your own export back is a no-op (idempotent). Applied
  // records keep their foreign seq (next_seq_ advances past them) and are
  // appended to the local WAL, so the merge itself is durable and crash-safe.
  // Both reject a dir equal to the store's own.
  util::Result<SegmentExchangeOutcome> ExportSegments(const std::string& dest_dir);
  util::Result<SegmentExchangeOutcome> ImportSegments(const std::string& src_dir);

  // Visits the live (last-writer-wins) record set. Snapshot semantics: the
  // visit runs over a copy, so callbacks may touch the store.
  void ForEachLive(const std::function<void(const VerdictRecord&)>& fn) const;

  StoreStats stats() const;
  const StoreConfig& config() const { return config_; }
  size_t live_size() const;

 private:
  explicit VerdictStore(StoreConfig config);

  util::Result<bool> RecoverLocked();
  util::Result<bool> OpenActiveSegmentLocked();
  util::Result<bool> SealActiveLocked();     // fsync + close the active segment.
  util::Result<bool> FsyncActiveLocked();    // Counts + fault-injects.
  util::Result<bool> CompactLocked();
  void ApplyLocked(VerdictRecord record);    // seq-LWW index update.
  void PublishGaugesLocked() const;
  std::string SegmentPath(uint64_t id) const;

  const StoreConfig config_;
  mutable std::mutex mu_;
  IoFaultInjector injector_;

  // Live index: digest -> newest record (by seq).
  std::unordered_map<std::string, VerdictRecord> live_;
  uint64_t next_seq_ = 1;
  uint64_t records_on_disk_ = 0;  // Frames across live segment files.

  std::vector<uint64_t> sealed_segments_;  // Ascending ids, replay-order only
                                           // for bookkeeping (seq decides LWW).
  uint64_t active_segment_ = 0;
  int active_fd_ = -1;
  size_t active_bytes_ = 0;
  size_t active_records_ = 0;  // Frames appended to the active segment.
  size_t unsynced_records_ = 0;

  uint64_t append_ordinal_ = 0;  // Fault-plan clock: attempts, 1-based.
  uint64_t fsync_ordinal_ = 0;
  bool failed_ = false;

  // Counters mirrored into StoreStats (obs metrics are updated inline).
  uint64_t appends_ = 0;
  uint64_t append_errors_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t fsync_failures_ = 0;
  uint64_t injected_faults_ = 0;
  uint64_t compactions_ = 0;
  RecoveryOutcome recovery_;
};

}  // namespace apichecker::store

#endif  // APICHECKER_STORE_VERDICT_STORE_H_
