// Write-ahead-log record framing for the verdict store. One record per
// vetted digest:
//
//   u32  magic   'VDR1' (0x31524456 little-endian on disk)
//   u32  payload_len
//   ...  payload (ByteWriter little-endian):
//          string digest        (ULEB128 length + bytes)
//          u64    seq           (store-wide monotone; last-writer-wins key)
//          u32    model_version (serving snapshot that produced the verdict)
//          u32    flags         (reserved)
//          u8     malicious
//          u64    score_bits    (IEEE-754 of the classifier score)
//          u64    timestamp_ms  (wall clock, for provenance/auditing)
//   u32  crc     CRC-32 (util::Crc32, shared with the ZIP codec) of payload
//
// The CRC is the durability contract: recovery scans a segment front to back
// and stops at the first frame whose magic, length, CRC, or payload decode
// fails — everything before that offset is trusted, everything after is a
// torn write (truncate) or corruption (quarantine), decided by the store.

#ifndef APICHECKER_STORE_WAL_H_
#define APICHECKER_STORE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace apichecker::store {

inline constexpr uint32_t kRecordMagic = 0x31524456u;  // "VDR1"
// Upper bound on one payload; a corrupt length field must not drive a huge
// allocation during recovery.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

struct VerdictRecord {
  std::string digest;          // SHA-1 hex of the APK bytes (cache key).
  uint64_t seq = 0;            // Assigned by the store on append.
  uint32_t model_version = 0;
  uint32_t flags = 0;
  bool malicious = false;
  double score = 0.0;
  uint64_t timestamp_ms = 0;
};

// Serializes one record into its on-disk frame (header + payload + CRC).
std::vector<uint8_t> EncodeRecord(const VerdictRecord& record);

// Result of scanning one segment file front to back.
struct SegmentScan {
  std::vector<VerdictRecord> records;  // Valid records, file order.
  size_t valid_bytes = 0;              // Offset just past the last valid record.
  bool clean = false;                  // True when the whole file parsed.
  std::string error;                   // Why the scan stopped, when !clean.
};

SegmentScan ScanSegment(std::span<const uint8_t> bytes);

}  // namespace apichecker::store

#endif  // APICHECKER_STORE_WAL_H_
