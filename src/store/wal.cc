#include "store/wal.h"

#include <bit>

#include "util/byte_io.h"
#include "util/crc32.h"
#include "util/strings.h"

namespace apichecker::store {

std::vector<uint8_t> EncodeRecord(const VerdictRecord& record) {
  util::ByteWriter payload;
  payload.PutString(record.digest);
  payload.PutU64(record.seq);
  payload.PutU32(record.model_version);
  payload.PutU32(record.flags);
  payload.PutU8(record.malicious ? 1 : 0);
  payload.PutU64(std::bit_cast<uint64_t>(record.score));
  payload.PutU64(record.timestamp_ms);

  util::ByteWriter frame;
  frame.PutU32(kRecordMagic);
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutBytes(payload.bytes());
  frame.PutU32(util::Crc32(payload.bytes()));
  return frame.TakeBytes();
}

namespace {

// Decodes the payload of one frame. Returns false on any structural problem
// (the CRC already passed, so this only fires on a format-version skew).
bool DecodePayload(std::span<const uint8_t> payload, VerdictRecord& out) {
  util::ByteReader reader(payload);
  auto digest = reader.ReadString();
  auto seq = reader.ReadU64();
  auto version = reader.ReadU32();
  auto flags = reader.ReadU32();
  auto malicious = reader.ReadU8();
  auto score_bits = reader.ReadU64();
  auto timestamp = reader.ReadU64();
  if (!digest.ok() || !seq.ok() || !version.ok() || !flags.ok() ||
      !malicious.ok() || !score_bits.ok() || !timestamp.ok() || !reader.AtEnd()) {
    return false;
  }
  out.digest = std::move(*digest);
  out.seq = *seq;
  out.model_version = *version;
  out.flags = *flags;
  out.malicious = *malicious != 0;
  out.score = std::bit_cast<double>(*score_bits);
  out.timestamp_ms = *timestamp;
  return true;
}

}  // namespace

SegmentScan ScanSegment(std::span<const uint8_t> bytes) {
  SegmentScan scan;
  util::ByteReader reader(bytes);
  for (;;) {
    if (reader.AtEnd()) {
      scan.clean = true;
      return scan;
    }
    const size_t frame_start = reader.position();
    auto magic = reader.ReadU32();
    if (!magic.ok() || *magic != kRecordMagic) {
      scan.error = util::StrFormat("bad magic at offset %zu", frame_start);
      scan.valid_bytes = frame_start;
      return scan;
    }
    auto payload_len = reader.ReadU32();
    if (!payload_len.ok() || *payload_len > kMaxPayloadBytes ||
        *payload_len + 4 > reader.remaining()) {
      scan.error = util::StrFormat("truncated frame at offset %zu", frame_start);
      scan.valid_bytes = frame_start;
      return scan;
    }
    auto payload = reader.ReadBytes(*payload_len);
    auto crc = reader.ReadU32();
    if (!payload.ok() || !crc.ok() || util::Crc32(*payload) != *crc) {
      scan.error = util::StrFormat("CRC mismatch at offset %zu", frame_start);
      scan.valid_bytes = frame_start;
      return scan;
    }
    VerdictRecord record;
    if (!DecodePayload(*payload, record)) {
      scan.error = util::StrFormat("undecodable payload at offset %zu", frame_start);
      scan.valid_bytes = frame_start;
      return scan;
    }
    scan.records.push_back(std::move(record));
    scan.valid_bytes = reader.position();
  }
}

}  // namespace apichecker::store
