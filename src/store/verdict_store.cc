#include "store/verdict_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/logging.h"
#include "util/strings.h"

namespace apichecker::store {

namespace fs = std::filesystem;

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every";
    case FsyncPolicy::kGroupCommit:
      return "group";
    case FsyncPolicy::kOsBuffered:
      return "buffered";
  }
  return "unknown";
}

util::Result<FsyncPolicy> ParseFsyncPolicy(std::string_view name) {
  if (name == "every" || name == "every-record") {
    return FsyncPolicy::kEveryRecord;
  }
  if (name == "group" || name == "group-commit") {
    return FsyncPolicy::kGroupCommit;
  }
  if (name == "buffered" || name == "os-buffered") {
    return FsyncPolicy::kOsBuffered;
  }
  return util::Err(util::StrFormat("unknown fsync policy '%.*s' "
                                   "(want every|group|buffered)",
                                   static_cast<int>(name.size()), name.data()));
}

namespace {

util::Result<bool> WriteAll(int fd, std::span<const uint8_t> bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return util::Err(util::StrFormat("write failed: %s", std::strerror(errno)));
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// Best-effort directory fsync so creates/renames/unlinks are durable.
void FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

util::Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Err(util::StrFormat("cannot open %s", path.c_str()));
  }
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

// Parses the numeric id out of "segment-<id>.<ext>"; nullopt for other names.
std::optional<uint64_t> SegmentIdFromName(const std::string& name) {
  constexpr std::string_view kPrefix = "segment-";
  if (name.rfind(kPrefix, 0) != 0) {
    return std::nullopt;
  }
  const size_t dot = name.find('.', kPrefix.size());
  if (dot == std::string::npos || dot == kPrefix.size()) {
    return std::nullopt;
  }
  uint64_t id = 0;
  for (size_t i = kPrefix.size(); i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return std::nullopt;
    }
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

}  // namespace

VerdictStore::VerdictStore(StoreConfig config)
    : config_(std::move(config)), injector_(config_.fault_plan) {}

util::Result<std::unique_ptr<VerdictStore>> VerdictStore::Open(StoreConfig config) {
  if (config.dir.empty()) {
    return util::Err("store directory not configured");
  }
  if (config.fsync_policy == FsyncPolicy::kGroupCommit &&
      config.group_commit_records == 0) {
    config.group_commit_records = 1;
  }
  config.segment_max_bytes = std::max<size_t>(config.segment_max_bytes, 4096);

  std::error_code ec;
  fs::create_directories(config.dir, ec);
  if (ec) {
    return util::Err(util::StrFormat("cannot create store dir %s: %s",
                                     config.dir.c_str(), ec.message().c_str()));
  }

  std::unique_ptr<VerdictStore> self(new VerdictStore(std::move(config)));
  std::lock_guard<std::mutex> lock(self->mu_);
  auto recovered = self->RecoverLocked();
  if (!recovered.ok()) {
    return util::Err(recovered.error());
  }
  auto opened = self->OpenActiveSegmentLocked();
  if (!opened.ok()) {
    return util::Err(opened.error());
  }
  if (self->config_.auto_compact_segments > 0 &&
      self->sealed_segments_.size() >= self->config_.auto_compact_segments) {
    auto compacted = self->CompactLocked();
    if (!compacted.ok()) {
      APICHECKER_LOG(Warning) << "store compaction at open failed: "
                              << compacted.error();
    }
  }
  self->PublishGaugesLocked();
  return self;
}

VerdictStore::~VerdictStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_fd_ >= 0) {
    if (!failed_) {
      ::fsync(active_fd_);
    }
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

std::string VerdictStore::SegmentPath(uint64_t id) const {
  return util::StrFormat("%s/segment-%08llu.wal", config_.dir.c_str(),
                         static_cast<unsigned long long>(id));
}

util::Result<bool> VerdictStore::RecoverLocked() {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  uint64_t max_seen_id = 0;
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const auto id = SegmentIdFromName(name);
    if (!id) {
      continue;
    }
    max_seen_id = std::max(max_seen_id, *id);
    if (entry.path().extension() == ".tmp") {
      // Unpublished compaction output from a previous crash: the rename never
      // happened, so the old segments are still authoritative. Discard.
      fs::remove(entry.path(), ec);
      continue;
    }
    if (entry.path().extension() == ".wal") {
      segments.emplace_back(*id, entry.path().string());
    }
    // *.quarantined files are preserved for forensics but never replayed.
  }
  std::sort(segments.begin(), segments.end());

  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [id, path] = segments[i];
    const bool newest = i + 1 == segments.size();
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      return util::Err(bytes.error());
    }
    SegmentScan scan = ScanSegment(*bytes);
    ++recovery_.segments_scanned;

    if (!scan.clean) {
      if (newest) {
        // Torn tail of the segment that was being appended when the previous
        // process died: trust everything before the first bad CRC, drop the
        // partial frame.
        std::error_code resize_ec;
        fs::resize_file(path, scan.valid_bytes, resize_ec);
        if (resize_ec) {
          return util::Err(util::StrFormat("cannot truncate torn tail of %s: %s",
                                           path.c_str(),
                                           resize_ec.message().c_str()));
        }
        ++recovery_.tails_truncated;
        recovery_.bytes_truncated += bytes->size() - scan.valid_bytes;
        metrics.counter(obs::names::kStoreTruncatedTailsTotal).Increment();
        APICHECKER_SLOG(Warning, "store.recovery.truncated")
            .With("segment", path)
            .With("valid_bytes", static_cast<uint64_t>(scan.valid_bytes))
            .With("dropped_bytes",
                  static_cast<uint64_t>(bytes->size() - scan.valid_bytes))
            .With("reason", scan.error);
      } else {
        // A sealed segment never has a legitimately torn tail (it was fsynced
        // and closed), so a failed scan means on-disk corruption. Quarantine
        // the whole file — availability over completeness — and keep serving.
        const std::string quarantined =
            path.substr(0, path.size() - 4) + ".quarantined";
        std::error_code rename_ec;
        fs::rename(path, quarantined, rename_ec);
        if (rename_ec) {
          return util::Err(util::StrFormat("cannot quarantine %s: %s", path.c_str(),
                                           rename_ec.message().c_str()));
        }
        ++recovery_.segments_quarantined;
        recovery_.records_quarantined += scan.records.size();
        metrics.counter(obs::names::kStoreQuarantinedSegmentsTotal).Increment();
        APICHECKER_SLOG(Error, "store.recovery.quarantined")
            .With("segment", path)
            .With("records_excluded", static_cast<uint64_t>(scan.records.size()))
            .With("reason", scan.error);
        continue;
      }
    }

    for (VerdictRecord& record : scan.records) {
      next_seq_ = std::max(next_seq_, record.seq + 1);
      ++records_on_disk_;
      ++recovery_.records_recovered;
      ApplyLocked(std::move(record));
    }
    sealed_segments_.push_back(id);
  }
  FsyncDir(config_.dir);
  metrics.counter(obs::names::kStoreRecoveredRecordsTotal)
      .Increment(recovery_.records_recovered);
  if (recovery_.records_recovered > 0 || recovery_.segments_quarantined > 0) {
    APICHECKER_SLOG(Info, "store.recovered")
        .With("segments", static_cast<uint64_t>(recovery_.segments_scanned))
        .With("records", recovery_.records_recovered)
        .With("live", static_cast<uint64_t>(live_.size()))
        .With("quarantined", static_cast<uint64_t>(recovery_.segments_quarantined));
  }
  active_segment_ = max_seen_id;  // OpenActiveSegmentLocked bumps to the next id.
  return true;
}

util::Result<bool> VerdictStore::OpenActiveSegmentLocked() {
  ++active_segment_;
  const std::string path = SegmentPath(active_segment_);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return util::Err(util::StrFormat("cannot create segment %s: %s", path.c_str(),
                                     std::strerror(errno)));
  }
  FsyncDir(config_.dir);
  active_fd_ = fd;
  active_bytes_ = 0;
  active_records_ = 0;
  unsynced_records_ = 0;
  return true;
}

util::Result<bool> VerdictStore::SealActiveLocked() {
  if (active_fd_ < 0) {
    return true;
  }
  auto synced = FsyncActiveLocked();
  ::close(active_fd_);
  active_fd_ = -1;
  sealed_segments_.push_back(active_segment_);
  if (!synced.ok()) {
    return synced;
  }
  return true;
}

util::Result<bool> VerdictStore::FsyncActiveLocked() {
  if (active_fd_ < 0 || unsynced_records_ == 0) {
    return true;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  const uint64_t ordinal = ++fsync_ordinal_;
  if (injector_.FsyncFails(ordinal)) {
    ++fsync_failures_;
    ++injected_faults_;
    metrics.counter(obs::names::kStoreFsyncFailuresTotal).Increment();
    metrics.counter(obs::names::kStoreInjectedFaultsTotal).Increment();
    return util::Err(util::StrFormat("injected fsync failure at fsync %llu",
                                     static_cast<unsigned long long>(ordinal)));
  }
  if (::fsync(active_fd_) != 0) {
    ++fsync_failures_;
    metrics.counter(obs::names::kStoreFsyncFailuresTotal).Increment();
    return util::Err(util::StrFormat("fsync failed: %s", std::strerror(errno)));
  }
  ++fsyncs_;
  unsynced_records_ = 0;
  metrics.counter(obs::names::kStoreFsyncsTotal).Increment();
  return true;
}

void VerdictStore::ApplyLocked(VerdictRecord record) {
  auto it = live_.find(record.digest);
  if (it == live_.end()) {
    live_.emplace(record.digest, std::move(record));
    return;
  }
  if (record.seq >= it->second.seq) {
    it->second = std::move(record);
  }
}

void VerdictStore::PublishGaugesLocked() const {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.gauge(obs::names::kStoreSegments)
      .Set(static_cast<double>(sealed_segments_.size() + (active_fd_ >= 0 ? 1 : 0)));
  metrics.gauge(obs::names::kStoreLiveRecords).Set(static_cast<double>(live_.size()));
  metrics.gauge(obs::names::kStoreDeadRecords)
      .Set(static_cast<double>(records_on_disk_ - live_.size()));
}

util::Result<bool> VerdictStore::Append(VerdictRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  if (failed_) {
    ++append_errors_;
    metrics.counter(obs::names::kStoreAppendErrorsTotal).Increment();
    return util::Err("store is dead after an injected crash; reopen to recover");
  }

  record.seq = next_seq_;
  const std::vector<uint8_t> frame = EncodeRecord(record);
  const uint64_t ordinal = ++append_ordinal_;

  switch (injector_.OnAppend(ordinal)) {
    case AppendFault::kCrash: {
      // Simulated process death mid-write: a prefix of the frame reaches the
      // file and nothing else ever will. The partial frame stays on disk so
      // the next Open exercises torn-tail truncation bit-for-bit.
      (void)WriteAll(active_fd_,
                     std::span<const uint8_t>(frame).first(frame.size() / 2));
      failed_ = true;
      ++injected_faults_;
      ++append_errors_;
      metrics.counter(obs::names::kStoreInjectedFaultsTotal).Increment();
      metrics.counter(obs::names::kStoreAppendErrorsTotal).Increment();
      APICHECKER_SLOG(Warning, "store.injected_crash")
          .With("append_ordinal", ordinal);
      return util::Err(util::StrFormat("injected crash-point at append %llu",
                                       static_cast<unsigned long long>(ordinal)));
    }
    case AppendFault::kShortWrite: {
      // Transient torn write the application notices: repair by truncating
      // back to the last good frame; the caller sees a visible error and the
      // record is not durable.
      (void)WriteAll(active_fd_,
                     std::span<const uint8_t>(frame).first(frame.size() / 2));
      ++injected_faults_;
      ++append_errors_;
      metrics.counter(obs::names::kStoreInjectedFaultsTotal).Increment();
      metrics.counter(obs::names::kStoreAppendErrorsTotal).Increment();
      if (::ftruncate(active_fd_, static_cast<off_t>(active_bytes_)) != 0 ||
          ::lseek(active_fd_, 0, SEEK_END) < 0) {
        failed_ = true;
        return util::Err(util::StrFormat(
            "injected short write at append %llu and repair failed: %s",
            static_cast<unsigned long long>(ordinal), std::strerror(errno)));
      }
      return util::Err(util::StrFormat("injected short write at append %llu",
                                       static_cast<unsigned long long>(ordinal)));
    }
    case AppendFault::kNone:
      break;
  }

  auto written = WriteAll(active_fd_, frame);
  if (!written.ok()) {
    ++append_errors_;
    metrics.counter(obs::names::kStoreAppendErrorsTotal).Increment();
    // Repair whatever partial frame a real failure may have left behind.
    (void)::ftruncate(active_fd_, static_cast<off_t>(active_bytes_));
    (void)::lseek(active_fd_, 0, SEEK_END);
    return written;
  }

  active_bytes_ += frame.size();
  ++active_records_;
  ++records_on_disk_;
  ++next_seq_;
  ++appends_;
  ++unsynced_records_;
  ApplyLocked(std::move(record));
  metrics.counter(obs::names::kStoreAppendsTotal).Increment();

  util::Result<bool> synced = true;
  if (config_.fsync_policy == FsyncPolicy::kEveryRecord ||
      (config_.fsync_policy == FsyncPolicy::kGroupCommit &&
       unsynced_records_ >= config_.group_commit_records)) {
    synced = FsyncActiveLocked();
  }

  if (active_bytes_ >= config_.segment_max_bytes) {
    auto sealed = SealActiveLocked();
    auto opened = OpenActiveSegmentLocked();
    if (!opened.ok()) {
      failed_ = true;
      return opened;
    }
    if (sealed.ok() && config_.auto_compact_segments > 0 &&
        sealed_segments_.size() >= config_.auto_compact_segments) {
      auto compacted = CompactLocked();
      if (!compacted.ok()) {
        APICHECKER_LOG(Warning) << "store auto-compaction failed: "
                                << compacted.error();
      }
    }
  }
  PublishGaugesLocked();
  return synced;
}

util::Result<bool> VerdictStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return util::Err("store is dead after an injected crash; reopen to recover");
  }
  return FsyncActiveLocked();
}

util::Result<bool> VerdictStore::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return util::Err("store is dead after an injected crash; reopen to recover");
  }
  return CompactLocked();
}

util::Result<bool> VerdictStore::CompactLocked() {
  if (sealed_segments_.empty()) {
    return true;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();

  // Seal the active segment first, so the compacted output supersedes every
  // file on disk and the fresh active opened below is again the single
  // highest-numbered segment. Recovery's torn-tail rule — "only the newest
  // segment may end mid-frame" — depends on the active segment always being
  // that newest file; publishing the compacted segment above a still-open
  // active would get a subsequent crash's torn tail quarantined (records
  // lost) instead of truncated. A failed seal fsync is not fatal here: the
  // compacted output below is fsynced and contains every live record anyway.
  (void)SealActiveLocked();

  // Reopens a fresh active segment before returning, so a failed compaction
  // leaves the store append-able.
  auto fail = [&](util::Result<bool> error) -> util::Result<bool> {
    auto opened = OpenActiveSegmentLocked();
    if (!opened.ok()) {
      failed_ = true;
    }
    return error;
  };

  // Write every live record (seq preserved) into the next segment id; replay
  // order does not matter because last-writer-wins is by seq.
  const uint64_t new_id = active_segment_ + 1;
  const std::string tmp_path = util::StrFormat(
      "%s/segment-%08llu.tmp", config_.dir.c_str(),
      static_cast<unsigned long long>(new_id));
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return fail(util::Err(util::StrFormat("cannot create %s: %s", tmp_path.c_str(),
                                          std::strerror(errno))));
  }
  for (const auto& [digest, record] : live_) {
    auto written = WriteAll(fd, EncodeRecord(record));
    if (!written.ok()) {
      ::close(fd);
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return fail(std::move(written));
    }
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return fail(util::Err(util::StrFormat("fsync of compacted segment failed: %s",
                                          std::strerror(errno))));
  }
  ::close(fd);

  const std::string final_path = SegmentPath(new_id);
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    const std::string message = ec.message();
    fs::remove(tmp_path, ec);
    return fail(util::Err(util::StrFormat("cannot publish compacted segment: %s",
                                          message.c_str())));
  }
  FsyncDir(config_.dir);

  // The compacted segment is durable and published: the old sealed segments
  // are now garbage. A crash here merely leaves duplicates, which replay
  // dedups by seq.
  for (uint64_t id : sealed_segments_) {
    fs::remove(SegmentPath(id), ec);
  }
  FsyncDir(config_.dir);

  sealed_segments_.assign(1, new_id);
  active_segment_ = new_id;  // The fresh active opens at new_id + 1.
  records_on_disk_ = live_.size();
  ++compactions_;
  metrics.counter(obs::names::kStoreCompactionsTotal).Increment();
  auto opened = OpenActiveSegmentLocked();
  if (!opened.ok()) {
    failed_ = true;
    return opened;
  }
  records_on_disk_ = live_.size();
  PublishGaugesLocked();
  APICHECKER_SLOG(Info, "store.compacted")
      .With("live_records", static_cast<uint64_t>(live_.size()))
      .With("segment", final_path);
  return true;
}

util::Result<SegmentExchangeOutcome> VerdictStore::ExportSegments(
    const std::string& dest_dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return util::Err("store is dead after an injected crash; reopen to recover");
  }
  if (dest_dir.empty() || fs::path(dest_dir).lexically_normal() ==
                              fs::path(config_.dir).lexically_normal()) {
    return util::Err("export destination must be a different directory");
  }
  std::error_code ec;
  fs::create_directories(dest_dir, ec);
  if (ec) {
    return util::Err(util::StrFormat("cannot create export dir %s: %s",
                                     dest_dir.c_str(), ec.message().c_str()));
  }

  // Seal the active segment so the export covers every durable record; an
  // empty active is left in place (nothing to copy, no empty-file churn).
  if (active_records_ > 0) {
    auto sealed = SealActiveLocked();
    auto opened = OpenActiveSegmentLocked();
    if (!opened.ok()) {
      failed_ = true;
      return util::Err(opened.error());
    }
    if (!sealed.ok()) {
      return util::Err(sealed.error());
    }
  } else {
    auto synced = FsyncActiveLocked();
    if (!synced.ok()) {
      return util::Err(synced.error());
    }
  }

  SegmentExchangeOutcome outcome;
  for (uint64_t id : sealed_segments_) {
    const std::string src = SegmentPath(id);
    const fs::path dst = fs::path(dest_dir) / fs::path(src).filename();
    fs::copy_file(src, dst, fs::copy_options::overwrite_existing, ec);
    if (ec) {
      return util::Err(util::StrFormat("cannot copy %s to %s: %s", src.c_str(),
                                       dst.c_str(), ec.message().c_str()));
    }
    ++outcome.segments;
  }
  FsyncDir(dest_dir);
  // After the seal above the active segment is empty, so every frame on disk
  // lives in the sealed set that was just copied.
  outcome.records = records_on_disk_;

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  metrics.counter(obs::names::kStoreSegmentsExportedTotal)
      .Increment(outcome.segments);
  metrics.counter(obs::names::kStoreRecordsExportedTotal)
      .Increment(outcome.records);
  PublishGaugesLocked();
  APICHECKER_SLOG(Info, "store.exported")
      .With("segments", static_cast<uint64_t>(outcome.segments))
      .With("records", outcome.records)
      .With("dest", dest_dir);
  return outcome;
}

util::Result<SegmentExchangeOutcome> VerdictStore::ImportSegments(
    const std::string& src_dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failed_) {
    return util::Err("store is dead after an injected crash; reopen to recover");
  }
  if (src_dir.empty() || fs::path(src_dir).lexically_normal() ==
                             fs::path(config_.dir).lexically_normal()) {
    return util::Err("import source must be a different directory");
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();

  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(src_dir, ec)) {
    const std::string name = entry.path().filename().string();
    const auto id = SegmentIdFromName(name);
    if (id && entry.path().extension() == ".wal") {
      segments.emplace_back(*id, entry.path().string());
    }
  }
  if (ec) {
    return util::Err(util::StrFormat("cannot scan import dir %s: %s",
                                     src_dir.c_str(), ec.message().c_str()));
  }
  std::sort(segments.begin(), segments.end());

  SegmentExchangeOutcome outcome;
  for (const auto& [id, path] : segments) {
    auto bytes = ReadFileBytes(path);
    if (!bytes.ok()) {
      return util::Err(bytes.error());
    }
    SegmentScan scan = ScanSegment(*bytes);
    if (!scan.clean) {
      // Exported segments are sealed-and-fsynced copies, so a dirty scan
      // means the transfer (or the source) corrupted the file. Import what
      // scanned clean from OTHER files, never a partial file.
      ++outcome.skipped_unclean;
      APICHECKER_SLOG(Warning, "store.import.skipped")
          .With("segment", path)
          .With("reason", scan.error);
      continue;
    }
    ++outcome.segments;
    for (VerdictRecord& record : scan.records) {
      next_seq_ = std::max(next_seq_, record.seq + 1);
      const auto it = live_.find(record.digest);
      // Strictly greater: on a seq tie the LOCAL record wins, which is what
      // makes importing a store's own export (or the same export twice) a
      // no-op instead of rewriting every record.
      if (it != live_.end() && record.seq <= it->second.seq) {
        ++outcome.superseded;
        continue;
      }
      // Append to the local WAL preserving the foreign seq — replay after a
      // crash re-merges to the same state. Bypasses Append(), which would
      // re-stamp seq and run fault injection meant for the serve path.
      const std::vector<uint8_t> frame = EncodeRecord(record);
      auto written = WriteAll(active_fd_, frame);
      if (!written.ok()) {
        ++append_errors_;
        metrics.counter(obs::names::kStoreAppendErrorsTotal).Increment();
        (void)::ftruncate(active_fd_, static_cast<off_t>(active_bytes_));
        (void)::lseek(active_fd_, 0, SEEK_END);
        return util::Err(written.error());
      }
      active_bytes_ += frame.size();
      ++active_records_;
      ++records_on_disk_;
      ++unsynced_records_;
      ++outcome.records;
      ApplyLocked(std::move(record));
      if (active_bytes_ >= config_.segment_max_bytes) {
        auto sealed = SealActiveLocked();
        auto opened = OpenActiveSegmentLocked();
        if (!opened.ok()) {
          failed_ = true;
          return util::Err(opened.error());
        }
        if (!sealed.ok()) {
          return util::Err(sealed.error());
        }
      }
    }
  }

  auto synced = FsyncActiveLocked();
  if (!synced.ok()) {
    return util::Err(synced.error());
  }
  metrics.counter(obs::names::kStoreSegmentsImportedTotal)
      .Increment(outcome.segments);
  metrics.counter(obs::names::kStoreRecordsImportedTotal)
      .Increment(outcome.records);
  metrics.counter(obs::names::kStoreImportSupersededTotal)
      .Increment(outcome.superseded);
  PublishGaugesLocked();
  APICHECKER_SLOG(Info, "store.imported")
      .With("segments", static_cast<uint64_t>(outcome.segments))
      .With("records_applied", outcome.records)
      .With("superseded", outcome.superseded)
      .With("skipped_unclean", static_cast<uint64_t>(outcome.skipped_unclean))
      .With("src", src_dir);
  return outcome;
}

void VerdictStore::ForEachLive(
    const std::function<void(const VerdictRecord&)>& fn) const {
  std::vector<VerdictRecord> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(live_.size());
    for (const auto& [digest, record] : live_) {
      snapshot.push_back(record);
    }
  }
  for (const VerdictRecord& record : snapshot) {
    fn(record);
  }
}

StoreStats VerdictStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreStats stats;
  stats.appends = appends_;
  stats.append_errors = append_errors_;
  stats.fsyncs = fsyncs_;
  stats.fsync_failures = fsync_failures_;
  stats.injected_faults = injected_faults_;
  stats.compactions = compactions_;
  stats.segments = sealed_segments_.size() + (active_fd_ >= 0 ? 1 : 0);
  stats.live_records = live_.size();
  stats.dead_records = records_on_disk_ - live_.size();
  stats.failed = failed_;
  stats.recovery = recovery_;
  return stats;
}

size_t VerdictStore::live_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

}  // namespace apichecker::store
