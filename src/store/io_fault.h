// Deterministic I/O fault injection for the verdict store, mirroring
// emu::FaultPlan: robustness is built in rather than bolted on. The plan
// threads from StoreConfig through the service, CLI, and bench, so torn
// writes, fsync failures, and mid-append crash-points can be scripted at
// exact record ordinals and every recovery path exercised bit-for-bit. An
// empty plan costs one branch per append.

#ifndef APICHECKER_STORE_IO_FAULT_H_
#define APICHECKER_STORE_IO_FAULT_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace apichecker::store {

// Faults are keyed by 1-based operation ordinals counted per store instance:
// append ordinals for write faults, fsync ordinals for fsync faults. The
// scripted lists and the seeded Bernoulli streams compose, exactly like
// emu::FaultPlan's windows + fault_rate.
struct IoFaultPlan {
  // Seeds the Bernoulli fault streams (independent per fault kind).
  uint64_t seed = 1;
  // Per-append probability of a short write (randomized stress mode).
  double short_write_rate = 0.0;
  // Per-fsync probability of an fsync failure.
  double fsync_failure_rate = 0.0;
  // Scripted short writes: the Nth append persists only a prefix of the
  // record; the store repairs the torn tail and reports the append failed.
  std::vector<uint64_t> short_write_at;
  // Scripted fsync failures: the Nth fsync reports failure.
  std::vector<uint64_t> fsync_fail_at;
  // Scripted crash-points: the Nth append dies mid-record — a prefix of the
  // frame reaches disk and the store goes dead (simulated process kill), so
  // reopening exercises torn-write truncation on a bit-identical log.
  std::vector<uint64_t> crash_at;

  bool enabled() const {
    return short_write_rate > 0.0 || fsync_failure_rate > 0.0 ||
           !short_write_at.empty() || !fsync_fail_at.empty() || !crash_at.empty();
  }
};

enum class AppendFault : uint8_t {
  kNone = 0,
  kShortWrite = 1,  // Partial frame on disk; store repairs and continues.
  kCrash = 2,       // Partial frame on disk; store is dead until reopened.
};

// Stateful evaluator of an IoFaultPlan. Not thread-safe; the store consults
// it under its own mutex.
class IoFaultInjector {
 public:
  explicit IoFaultInjector(const IoFaultPlan& plan);

  // Consulted once per append, before any bytes are written. Crash-points
  // take precedence over short writes when both fire on one ordinal.
  AppendFault OnAppend(uint64_t append_ordinal);

  // Consulted once per fsync attempt.
  bool FsyncFails(uint64_t fsync_ordinal);

 private:
  IoFaultPlan plan_;
  util::Rng write_rng_;
  util::Rng fsync_rng_;
};

}  // namespace apichecker::store

#endif  // APICHECKER_STORE_IO_FAULT_H_
