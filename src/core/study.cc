#include "core/study.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"
#include "util/logging.h"

namespace apichecker::core {

size_t StudyDataset::NumPositive() const {
  size_t n = 0;
  for (const StudyRecord& r : records) {
    n += r.label;
  }
  return n;
}

StudyRecorder::StudyRecorder(const android::ApiUniverse& universe,
                             const emu::EngineConfig& engine_config)
    : universe_(universe),
      hook_minutes_per_invocation_(engine_config.hook_cost_us / 6.0e7) {
  for (size_t i = 0; i < universe.permissions().size(); ++i) {
    permission_ids_.emplace(universe.permissions()[i].name,
                            static_cast<android::PermissionId>(i));
  }
  for (size_t i = 0; i < universe.intents().size(); ++i) {
    intent_ids_.emplace(universe.intents()[i], static_cast<android::IntentId>(i));
  }
}

StudyRecord StudyRecorder::BuildRecord(const apk::ApkFile& apk,
                                       const emu::EmulationReport& report) const {
  StudyRecord record;
  record.observed_apis = report.observed_apis;
  record.observed_api_counts = report.observed_api_counts;
  for (size_t m = 0; m < apk.dex.method_name_idx.size(); ++m) {
    if (const auto id = universe_.FindByName(apk.dex.MethodName(static_cast<uint32_t>(m)))) {
      record.static_apis.push_back(*id);
    }
  }
  std::sort(record.static_apis.begin(), record.static_apis.end());
  record.total_invocations = report.total_invocations;
  record.rac = static_cast<float>(report.rac);
  record.base_minutes = static_cast<float>(
      report.emulation_minutes -
      static_cast<double>(report.tracked_invocations) * hook_minutes_per_invocation_);
  record.package_name = apk.manifest.package_name;
  for (const std::string& p : report.requested_permissions) {
    const auto it = permission_ids_.find(p);
    if (it != permission_ids_.end()) {
      record.permissions.push_back(it->second);
    }
  }
  for (const std::string& action : report.manifest_intent_filters) {
    const auto it = intent_ids_.find(action);
    if (it != intent_ids_.end()) {
      record.manifest_intents.push_back(it->second);
    }
  }
  for (const emu::ObservedIntent& observed : report.observed_intents) {
    const auto it = intent_ids_.find(observed.action);
    if (it != intent_ids_.end()) {
      record.runtime_intents.emplace_back(it->second, observed.carrier);
    }
  }
  return record;
}

StudyDataset RunStudy(const android::ApiUniverse& universe, synth::CorpusGenerator& generator,
                      const StudyConfig& config, util::ThreadPool* pool) {
  obs::TraceSpan span("core.run_study");
  StudyDataset study;
  study.records.resize(config.num_apps);

  const emu::DynamicAnalysisEngine engine(universe, config.engine);
  const emu::TrackedApiSet track_all = emu::TrackedApiSet::All(universe.num_apis());
  const StudyRecorder recorder(universe, config.engine);

  util::ThreadPool local_pool(1);
  util::ThreadPool& workers = pool == nullptr ? local_pool : *pool;

  size_t produced = 0;
  std::vector<synth::AppProfile> batch;
  while (produced < config.num_apps) {
    const size_t batch_size = std::min(config.batch_size, config.num_apps - produced);
    batch.clear();
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      batch.push_back(generator.Next());  // Generator is stateful: serial.
    }
    const size_t base = produced;
    workers.ParallelFor(0, batch_size, [&](size_t i) {
      const synth::AppProfile& profile = batch[i];
      // Full APK round trip: build bytes, parse them back, emulate.
      const std::vector<uint8_t> apk_bytes = synth::BuildApkBytes(profile, universe);
      auto apk = apk::ParseApk(apk_bytes);
      if (!apk.ok()) {
        APICHECKER_SLOG(Error, "study.bad_apk").With("error", apk.error());
        return;
      }
      const emu::EmulationReport report = engine.Run(*apk, track_all);
      StudyRecord record = recorder.BuildRecord(*apk, report);
      record.label = profile.malicious ? 1 : 0;
      record.is_update = profile.is_update ? 1 : 0;
      study.records[base + i] = std::move(record);
    });
    produced += batch_size;
  }
  return study;
}

ml::Dataset BuildDataset(const StudyDataset& study, const FeatureSchema& schema,
                         const android::ApiUniverse& universe) {
  (void)universe;
  ml::Dataset data;
  data.num_features = schema.num_features();
  data.rows.reserve(study.size());
  data.labels.reserve(study.size());
  for (const StudyRecord& record : study.records) {
    ml::SparseRow row;
    if (schema.options().use_apis) {
      for (size_t i = 0; i < record.observed_apis.size(); ++i) {
        const uint32_t count = i < record.observed_api_counts.size()
                                   ? record.observed_api_counts[i]
                                   : 1;
        const int64_t f = schema.ApiFeatureForCount(record.observed_apis[i], count);
        if (f >= 0) {
          row.push_back(static_cast<uint32_t>(f));
        }
      }
    }
    if (schema.options().use_permissions) {
      for (android::PermissionId p : record.permissions) {
        const int64_t f = schema.PermissionFeatureById(p);
        if (f >= 0) {
          row.push_back(static_cast<uint32_t>(f));
        }
      }
    }
    if (schema.options().use_intents) {
      for (android::IntentId intent : record.manifest_intents) {
        const int64_t f = schema.IntentFeatureById(intent);
        if (f >= 0) {
          row.push_back(static_cast<uint32_t>(f));
        }
      }
      for (const auto& [intent, carrier] : record.runtime_intents) {
        // §4.5 collection rule: the parameter is only visible when the
        // carrying API is hooked by the production tracked set.
        if (schema.TracksApi(carrier)) {
          const int64_t f = schema.IntentFeatureById(intent);
          if (f >= 0) {
            row.push_back(static_cast<uint32_t>(f));
          }
        }
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    data.Add(std::move(row), record.label);
  }
  return data;
}

}  // namespace apichecker::core
