#include "core/feature_schema.h"

#include <algorithm>
#include <cctype>

#include "util/strings.h"

namespace apichecker::core {

namespace {

// Shortens "android.telephony.SmsManager.sendTextMessage" to the paper's
// alias style "SmsManager_sendTextMessage".
std::string ShortAlias(const std::string& full_name) {
  const std::vector<std::string> parts = util::Split(full_name, '.');
  if (parts.size() < 2) {
    return full_name;
  }
  return parts[parts.size() - 2] + "_" + parts.back();
}

std::string ShortPermission(const std::string& name) {
  const std::vector<std::string> parts = util::Split(name, '.');
  return parts.empty() ? name : parts.back();
}

std::string ShortIntent(const std::string& action) {
  // Keep the last two dot components when informative (wifi.STATE_CHANGE).
  const std::vector<std::string> parts = util::Split(action, '.');
  if (parts.size() >= 2 && !parts[parts.size() - 2].empty() &&
      std::islower(static_cast<unsigned char>(parts[parts.size() - 2][0]))) {
    return parts[parts.size() - 2] + "." + parts.back();
  }
  return parts.empty() ? action : parts.back();
}

}  // namespace

std::string FeatureOptions::Label() const {
  std::vector<std::string> parts;
  if (use_apis) {
    parts.push_back(frequency_buckets > 0
                        ? util::StrFormat("A(hist%u)", frequency_buckets)
                        : "A");
  }
  if (use_permissions) {
    parts.push_back("P");
  }
  if (use_intents) {
    parts.push_back("I");
  }
  return parts.empty() ? "-" : util::Join(parts, "+");
}

FeatureSchema::FeatureSchema(std::vector<android::ApiId> tracked_apis,
                             const android::ApiUniverse& universe, FeatureOptions options)
    : tracked_apis_(std::move(tracked_apis)), options_(options) {
  uint32_t next = 0;
  for (android::ApiId id : tracked_apis_) {
    api_tracked_.emplace(id, 1);
  }
  if (options_.use_apis) {
    const uint32_t width = std::max<uint32_t>(1, options_.frequency_buckets);
    for (android::ApiId id : tracked_apis_) {
      if (api_to_feature_.emplace(id, next).second) {
        const std::string alias = "API: " + ShortAlias(universe.api(id).name);
        if (width == 1) {
          feature_names_.push_back(alias);
        } else {
          for (uint32_t b = 0; b < width; ++b) {
            feature_names_.push_back(util::StrFormat("%s [freq%u]", alias.c_str(), b));
          }
        }
        next += width;
      }
    }
  }
  if (options_.use_permissions) {
    permission_base_ = next;
    permission_count_ = universe.permissions().size();
    for (const android::PermissionInfo& p : universe.permissions()) {
      permission_to_feature_.emplace(p.name, next);
      feature_names_.push_back("Permission: " + ShortPermission(p.name));
      ++next;
    }
  }
  if (options_.use_intents) {
    intent_base_ = next;
    intent_count_ = universe.intents().size();
    for (const std::string& action : universe.intents()) {
      intent_to_feature_.emplace(action, next);
      feature_names_.push_back("Intent: " + ShortIntent(action));
      ++next;
    }
  }
  num_features_ = next;
}

int64_t FeatureSchema::ApiFeature(android::ApiId api) const {
  const auto it = api_to_feature_.find(api);
  return it == api_to_feature_.end() ? -1 : static_cast<int64_t>(it->second);
}

int64_t FeatureSchema::PermissionFeature(const std::string& name) const {
  const auto it = permission_to_feature_.find(name);
  return it == permission_to_feature_.end() ? -1 : static_cast<int64_t>(it->second);
}

int64_t FeatureSchema::IntentFeature(const std::string& action) const {
  const auto it = intent_to_feature_.find(action);
  return it == intent_to_feature_.end() ? -1 : static_cast<int64_t>(it->second);
}

uint32_t FeatureSchema::FrequencyBucket(uint32_t invocations, uint8_t buckets) {
  if (buckets <= 1) {
    return 0;
  }
  // Log10 bucketing: [1,10) -> 0, [10,100) -> 1, ... clamped to the top.
  uint32_t bucket = 0;
  uint64_t threshold = 10;
  while (bucket + 1 < buckets && invocations >= threshold) {
    ++bucket;
    threshold *= 10;
  }
  return bucket;
}

int64_t FeatureSchema::ApiFeatureForCount(android::ApiId api, uint32_t invocations) const {
  const int64_t base = ApiFeature(api);
  if (base < 0 || options_.frequency_buckets <= 1) {
    return base;
  }
  return base + FrequencyBucket(invocations, options_.frequency_buckets);
}

int64_t FeatureSchema::PermissionFeatureById(android::PermissionId id) const {
  return (permission_base_ >= 0 && id < permission_count_) ? permission_base_ + id : -1;
}

int64_t FeatureSchema::IntentFeatureById(android::IntentId id) const {
  return (intent_base_ >= 0 && id < intent_count_) ? intent_base_ + id : -1;
}

std::string FeatureSchema::FeatureName(uint32_t feature) const {
  return feature < feature_names_.size() ? feature_names_[feature] : "?";
}

ml::SparseRow FeatureSchema::Encode(const emu::EmulationReport& report) const {
  ml::SparseRow row;
  if (options_.use_apis) {
    for (size_t i = 0; i < report.observed_apis.size(); ++i) {
      const uint32_t count = i < report.observed_api_counts.size()
                                 ? report.observed_api_counts[i]
                                 : 1;
      const int64_t f = ApiFeatureForCount(report.observed_apis[i], count);
      if (f >= 0) {
        row.push_back(static_cast<uint32_t>(f));
      }
    }
  }
  if (options_.use_permissions) {
    for (const std::string& p : report.requested_permissions) {
      const int64_t f = PermissionFeature(p);
      if (f >= 0) {
        row.push_back(static_cast<uint32_t>(f));
      }
    }
  }
  if (options_.use_intents) {
    for (const std::string& action : report.manifest_intent_filters) {
      const int64_t f = IntentFeature(action);
      if (f >= 0) {
        row.push_back(static_cast<uint32_t>(f));
      }
    }
    for (const emu::ObservedIntent& observed : report.observed_intents) {
      const int64_t f = IntentFeature(observed.action);
      if (f >= 0) {
        row.push_back(static_cast<uint32_t>(f));
      }
    }
  }
  std::sort(row.begin(), row.end());
  row.erase(std::unique(row.begin(), row.end()), row.end());
  return row;
}

}  // namespace apichecker::core
