// APICHECKER facade: the production detector. Wires together key-API
// selection, the feature schema (key APIs + permissions + intents), and the
// random-forest classifier; supports monthly re-selection + retraining
// (model evolution, §5.3) and model persistence.

#ifndef APICHECKER_CORE_CHECKER_H_
#define APICHECKER_CORE_CHECKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/feature_schema.h"
#include "core/selection.h"
#include "core/study.h"
#include "emu/engine.h"
#include "ml/random_forest.h"

namespace apichecker::core {

struct ApiCheckerConfig {
  FeatureOptions features = FeatureOptions::All();
  SelectionConfig selection;
  ml::RandomForestConfig forest;
  double threshold = 0.5;
};

class ApiChecker {
 public:
  ApiChecker(const android::ApiUniverse& universe, ApiCheckerConfig config);

  // Full §4 pipeline: SRC ranking over the study corpus, four-step key-API
  // selection, schema construction, and random-forest training.
  void TrainFromStudy(const StudyDataset& study);

  // Installs a previously trained model (selection + options + threshold +
  // forest) without retraining — the model-store restore path.
  void RestoreTrained(KeyApiSelection selection, FeatureOptions features, double threshold,
                      ml::RandomForest forest);

  bool trained() const { return model_ != nullptr; }
  const KeyApiSelection& selection() const { return selection_; }
  const FeatureSchema& schema() const { return schema_; }
  const ml::RandomForest& model() const { return *model_; }
  const ApiCheckerConfig& config() const { return config_; }

  // The hook configuration production emulators run with.
  emu::TrackedApiSet MakeTrackedSet() const;

  struct Verdict {
    bool malicious = false;
    double score = 0.0;
  };
  Verdict Classify(const emu::EmulationReport& report) const;

  // Top-k features by Gini importance (Fig 13), as (name, importance).
  std::vector<std::pair<std::string, double>> TopFeatures(size_t k) const;

  // Gini-importance-ranked key APIs (for the §5.4 top-k reduction study).
  std::vector<android::ApiId> KeyApisByImportance() const;

  // Model persistence (schema + forest), §5.3's monthly model store.
  std::vector<uint8_t> SerializeModel() const;

 private:
  const android::ApiUniverse& universe_;
  ApiCheckerConfig config_;
  KeyApiSelection selection_;
  FeatureSchema schema_;
  std::unique_ptr<ml::RandomForest> model_;
};

}  // namespace apichecker::core

#endif  // APICHECKER_CORE_CHECKER_H_
