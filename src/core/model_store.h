// Whole-model persistence for APICHECKER: serializes the key-API selection,
// the feature-schema options, the decision threshold, and the trained random
// forest into one versioned blob, and restores a ready-to-classify checker
// from it. This is what lets a market ship its trained model to smaller
// markets (paper §5.4: "large app markets can possibly distribute their
// trained models to smaller markets") and what the monthly evolution loop
// archives (§5.3).

#ifndef APICHECKER_CORE_MODEL_STORE_H_
#define APICHECKER_CORE_MODEL_STORE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/checker.h"
#include "util/result.h"

namespace apichecker::core {

// Serializes a trained checker. Fails (empty vector) if untrained.
std::vector<uint8_t> SerializeChecker(const ApiChecker& checker);

// Restores a checker against `universe`. The universe must contain every
// API id referenced by the blob (i.e. be the same modelled framework at the
// same or a later SDK level).
util::Result<ApiChecker> DeserializeChecker(const android::ApiUniverse& universe,
                                            std::span<const uint8_t> bytes);

// File-system convenience wrappers.
util::Result<bool> SaveCheckerToFile(const ApiChecker& checker, const std::string& path);
util::Result<ApiChecker> LoadCheckerFromFile(const android::ApiUniverse& universe,
                                             const std::string& path);

}  // namespace apichecker::core

#endif  // APICHECKER_CORE_MODEL_STORE_H_
