#include "core/selection.h"

#include <algorithm>
#include <cmath>

namespace apichecker::core {

std::vector<ApiCorrelation> ComputeApiCorrelations(const StudyDataset& study,
                                                   size_t num_apis) {
  std::vector<uint32_t> count(num_apis, 0);
  std::vector<uint32_t> count_pos(num_apis, 0);
  uint64_t n_pos = 0;
  for (const StudyRecord& record : study.records) {
    n_pos += record.label;
    for (android::ApiId api : record.observed_apis) {
      if (api < num_apis) {
        ++count[api];
        count_pos[api] += record.label;
      }
    }
  }
  const double n = static_cast<double>(study.size());
  const double c1 = static_cast<double>(n_pos);
  const double c0 = n - c1;

  std::vector<ApiCorrelation> correlations(num_apis);
  for (size_t api = 0; api < num_apis; ++api) {
    ApiCorrelation& c = correlations[api];
    c.api = static_cast<android::ApiId>(api);
    c.support = count[api];
    // Phi coefficient from the 2x2 contingency table (== Spearman/Pearson
    // for binary data).
    const double r1 = static_cast<double>(count[api]);
    const double r0 = n - r1;
    const double n11 = static_cast<double>(count_pos[api]);
    const double n10 = r1 - n11;
    const double n01 = c1 - n11;
    const double n00 = r0 - n01;
    const double denom = std::sqrt(r1 * r0 * c1 * c0);
    c.src = denom > 0.0 ? (n11 * n00 - n10 * n01) / denom : 0.0;
  }
  return correlations;
}

namespace {

bool IsSeldom(const ApiCorrelation& c, size_t corpus_size, const SelectionConfig& config) {
  return static_cast<double>(c.support) <
         config.seldom_fraction * static_cast<double>(corpus_size);
}

}  // namespace

KeyApiSelection SelectKeyApis(const std::vector<ApiCorrelation>& correlations,
                              const android::ApiUniverse& universe, size_t corpus_size,
                              const SelectionConfig& config) {
  KeyApiSelection selection;

  // Step 1 — Set-C: positively correlated APIs that are not seldom invoked,
  // plus frequently invoked APIs with strong negative correlation.
  for (const ApiCorrelation& c : correlations) {
    if (IsSeldom(c, corpus_size, config)) {
      continue;
    }
    const bool positive = c.src >= config.src_threshold;
    const bool frequent_negative =
        c.src <= -config.src_threshold &&
        static_cast<double>(c.support) >=
            config.frequent_fraction * static_cast<double>(corpus_size);
    if (positive || frequent_negative) {
      selection.set_c.push_back(c.api);
    }
  }

  // Step 2 — Set-P: APIs guarded by dangerous/signature permissions
  // (permission-map analogue of Axplorer/PScout).
  selection.set_p = universe.RestrictivePermissionApis();

  // Step 3 — Set-S: APIs performing sensitive operations (domain knowledge).
  selection.set_s = universe.SensitiveOperationApis();

  // Step 4 — union.
  std::vector<uint8_t> in_c(universe.num_apis(), 0), in_p(universe.num_apis(), 0),
      in_s(universe.num_apis(), 0);
  for (android::ApiId id : selection.set_c) {
    in_c[id] = 1;
  }
  for (android::ApiId id : selection.set_p) {
    in_p[id] = 1;
  }
  for (android::ApiId id : selection.set_s) {
    in_s[id] = 1;
  }
  for (android::ApiId id = 0; id < universe.num_apis(); ++id) {
    const int membership = in_c[id] + in_p[id] + in_s[id];
    if (membership > 0) {
      selection.key_apis.push_back(id);
    }
    if (in_c[id] && in_p[id] && in_s[id]) {
      ++selection.overlap_cps;
    } else if (in_c[id] && in_p[id]) {
      ++selection.overlap_cp;
    } else if (in_c[id] && in_s[id]) {
      ++selection.overlap_cs;
    } else if (in_p[id] && in_s[id]) {
      ++selection.overlap_ps;
    }
  }
  return selection;
}

std::vector<android::ApiId> TopCorrelatedApis(const std::vector<ApiCorrelation>& correlations,
                                              size_t corpus_size, size_t n,
                                              const SelectionConfig& config) {
  std::vector<const ApiCorrelation*> candidates;
  std::vector<const ApiCorrelation*> seldom;
  candidates.reserve(correlations.size());
  for (const ApiCorrelation& c : correlations) {
    (IsSeldom(c, corpus_size, config) ? seldom : candidates).push_back(&c);
  }
  auto by_abs_src = [](const ApiCorrelation* a, const ApiCorrelation* b) {
    const double fa = std::fabs(a->src);
    const double fb = std::fabs(b->src);
    return fa != fb ? fa > fb : a->api < b->api;
  };
  std::sort(candidates.begin(), candidates.end(), by_abs_src);
  // Seldom APIs are only enrolled after every not-seldom API (the >1K log
  // tail of Fig 6).
  std::sort(seldom.begin(), seldom.end(), by_abs_src);
  candidates.insert(candidates.end(), seldom.begin(), seldom.end());

  std::vector<android::ApiId> top;
  top.reserve(std::min(n, candidates.size()));
  for (size_t i = 0; i < candidates.size() && i < n; ++i) {
    top.push_back(candidates[i]->api);
  }
  return top;
}

}  // namespace apichecker::core
