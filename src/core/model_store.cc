#include "core/model_store.h"

#include <bit>
#include <fstream>

#include "util/byte_io.h"

namespace apichecker::core {

namespace {

constexpr uint32_t kModelStoreMagic = 0x314d4341;  // "ACM1"
constexpr uint16_t kModelStoreVersion = 1;

void PutIdList(util::ByteWriter& writer, const std::vector<android::ApiId>& ids) {
  writer.PutU32(static_cast<uint32_t>(ids.size()));
  for (android::ApiId id : ids) {
    writer.PutUleb128(id);
  }
}

util::Result<std::vector<android::ApiId>> ReadIdList(util::ByteReader& reader,
                                                     size_t universe_size) {
  auto count = reader.ReadU32();
  if (!count.ok()) {
    return util::Err("truncated id list header");
  }
  if (*count > universe_size) {
    return util::Err("implausible id list size");
  }
  std::vector<android::ApiId> ids;
  ids.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    auto id = reader.ReadUleb128();
    if (!id.ok()) {
      return util::Err("truncated id list");
    }
    if (*id >= universe_size) {
      return util::Err("api id out of range for this universe");
    }
    ids.push_back(static_cast<android::ApiId>(*id));
  }
  return ids;
}

}  // namespace

std::vector<uint8_t> SerializeChecker(const ApiChecker& checker) {
  if (!checker.trained()) {
    return {};
  }
  util::ByteWriter writer;
  writer.PutU32(kModelStoreMagic);
  writer.PutU16(kModelStoreVersion);

  const FeatureOptions& options = checker.config().features;
  writer.PutU8(options.use_apis ? 1 : 0);
  writer.PutU8(options.use_permissions ? 1 : 0);
  writer.PutU8(options.use_intents ? 1 : 0);
  writer.PutU8(options.frequency_buckets);
  writer.PutU64(std::bit_cast<uint64_t>(checker.config().threshold));

  const KeyApiSelection& sel = checker.selection();
  PutIdList(writer, sel.set_c);
  PutIdList(writer, sel.set_p);
  PutIdList(writer, sel.set_s);
  PutIdList(writer, sel.key_apis);
  writer.PutU32(static_cast<uint32_t>(sel.overlap_cp));
  writer.PutU32(static_cast<uint32_t>(sel.overlap_cs));
  writer.PutU32(static_cast<uint32_t>(sel.overlap_ps));
  writer.PutU32(static_cast<uint32_t>(sel.overlap_cps));

  const std::vector<uint8_t> forest = checker.model().Serialize();
  writer.PutU32(static_cast<uint32_t>(forest.size()));
  writer.PutBytes(forest);
  return writer.TakeBytes();
}

util::Result<ApiChecker> DeserializeChecker(const android::ApiUniverse& universe,
                                            std::span<const uint8_t> bytes) {
  util::ByteReader reader(bytes);
  auto magic = reader.ReadU32();
  if (!magic.ok() || *magic != kModelStoreMagic) {
    return util::Err("bad model-store magic");
  }
  auto version = reader.ReadU16();
  if (!version.ok() || *version != kModelStoreVersion) {
    return util::Err("unsupported model-store version");
  }

  auto use_apis = reader.ReadU8();
  auto use_permissions = reader.ReadU8();
  auto use_intents = reader.ReadU8();
  auto buckets = reader.ReadU8();
  auto threshold_bits = reader.ReadU64();
  if (!use_apis.ok() || !use_permissions.ok() || !use_intents.ok() || !buckets.ok() ||
      !threshold_bits.ok()) {
    return util::Err("truncated model-store header");
  }
  FeatureOptions options;
  options.use_apis = *use_apis != 0;
  options.use_permissions = *use_permissions != 0;
  options.use_intents = *use_intents != 0;
  options.frequency_buckets = *buckets;
  const double threshold = std::bit_cast<double>(*threshold_bits);

  KeyApiSelection selection;
  for (auto* list : {&selection.set_c, &selection.set_p, &selection.set_s,
                     &selection.key_apis}) {
    auto ids = ReadIdList(reader, universe.num_apis());
    if (!ids.ok()) {
      return util::Err(ids.error());
    }
    *list = std::move(*ids);
  }
  auto cp = reader.ReadU32();
  auto cs = reader.ReadU32();
  auto ps = reader.ReadU32();
  auto cps = reader.ReadU32();
  if (!cp.ok() || !cs.ok() || !ps.ok() || !cps.ok()) {
    return util::Err("truncated overlap counts");
  }
  selection.overlap_cp = *cp;
  selection.overlap_cs = *cs;
  selection.overlap_ps = *ps;
  selection.overlap_cps = *cps;

  auto forest_size = reader.ReadU32();
  if (!forest_size.ok()) {
    return util::Err("truncated forest header");
  }
  auto forest_bytes = reader.ReadBytes(*forest_size);
  if (!forest_bytes.ok()) {
    return util::Err("truncated forest body");
  }
  auto forest = ml::RandomForest::Deserialize(*forest_bytes);
  if (!forest.ok()) {
    return util::Err("forest: " + forest.error());
  }

  ApiCheckerConfig config;
  config.features = options;
  config.threshold = threshold;
  ApiChecker checker(universe, config);
  checker.RestoreTrained(std::move(selection), options, threshold, std::move(*forest));
  return checker;
}

util::Result<bool> SaveCheckerToFile(const ApiChecker& checker, const std::string& path) {
  const std::vector<uint8_t> bytes = SerializeChecker(checker);
  if (bytes.empty()) {
    return util::Err("checker is not trained");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return util::Err("cannot open '" + path + "' for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    return util::Err("short write to '" + path + "'");
  }
  return true;
}

util::Result<ApiChecker> LoadCheckerFromFile(const android::ApiUniverse& universe,
                                             const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return util::Err("cannot open '" + path + "'");
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  return DeserializeChecker(universe, bytes);
}

}  // namespace apichecker::core
