// Baseline detectors modelled after the related work of Table 1. Each
// baseline follows its paper's recipe at the feature level (which API budget,
// whether extraction is static or dynamic, which auxiliary features, which
// classifier) and carries that recipe's analysis-cost model, so the Table 1
// comparison — accuracy vs analysis time vs feature budget — can be
// regenerated on the synthetic corpus.

#ifndef APICHECKER_CORE_BASELINES_H_
#define APICHECKER_CORE_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "core/study.h"
#include "ml/classifier.h"

namespace apichecker::core {

struct BaselineSpec {
  std::string name;
  std::string citation;          // e.g. "Sharma et al. [35]".
  enum class Mode { kStatic, kDynamic } mode = Mode::kStatic;
  ml::ClassifierKind classifier = ml::ClassifierKind::kKnn;
  size_t num_apis = 100;         // API feature budget (0 = no API features).
  bool use_permissions = false;
  bool use_intents = false;
  // Analysis-time model: median minutes per app on this recipe's pipeline
  // (static recipes: extraction; dynamic recipes: emulation length).
  double analysis_minutes_median = 0.5;
  double analysis_minutes_sigma = 0.3;
};

// The Table 1 roster: Sharma et al., DroidAPIMiner, DroidMat, Yang et al.,
// DroidCat, DroidDolphin, DREBIN.
std::vector<BaselineSpec> StandardBaselines();

class BaselineDetector {
 public:
  BaselineDetector(const android::ApiUniverse& universe, BaselineSpec spec, uint64_t seed);

  // Selects the spec's API budget by |SRC| over the spec's extraction view
  // (static refs vs dynamic observations) and trains the spec's classifier.
  void Train(const StudyDataset& train);

  ml::ConfusionMatrix Evaluate(const StudyDataset& test) const;

  // Per-app analysis minutes drawn from the recipe's cost model.
  double SampleAnalysisMinutes(util::Rng& rng) const;

  const BaselineSpec& spec() const { return spec_; }
  const std::vector<android::ApiId>& selected_apis() const { return selected_apis_; }

 private:
  ml::Dataset Featurize(const StudyDataset& study) const;

  const android::ApiUniverse& universe_;
  BaselineSpec spec_;
  uint64_t seed_;
  std::vector<android::ApiId> selected_apis_;
  std::unique_ptr<ml::Classifier> model_;
};

}  // namespace apichecker::core

#endif  // APICHECKER_CORE_BASELINES_H_
