// The "collaborative study" pipeline of §4: run every corpus app through the
// dynamic-analysis engine with ALL framework APIs hooked, and keep a compact
// per-app observation record. Any smaller tracked set's feature vectors are
// then projections of these records, so the expensive emulation pass runs
// once per corpus.

#ifndef APICHECKER_CORE_STUDY_H_
#define APICHECKER_CORE_STUDY_H_

#include <cstdint>
#include <unordered_map>
#include <string>
#include <vector>

#include "android/api_universe.h"
#include "core/feature_schema.h"
#include "emu/engine.h"
#include "ml/dataset.h"
#include "synth/corpus.h"
#include "util/thread_pool.h"

namespace apichecker::core {

struct StudyRecord {
  std::vector<android::ApiId> observed_apis;  // Sorted; fired under track-all.
  std::vector<uint32_t> observed_api_counts;  // Parallel invocation counts.
  // Framework APIs referenced in the DEX method table (static view — what a
  // static analyzer extracts without running the app). Superset of
  // observed_apis except for reflection-hidden calls, which appear in
  // neither.
  std::vector<android::ApiId> static_apis;
  std::vector<android::PermissionId> permissions;
  std::vector<android::IntentId> manifest_intents;
  // Runtime intents with the API that carried them (visible in a projection
  // only when the carrier API is tracked).
  std::vector<std::pair<android::IntentId, android::ApiId>> runtime_intents;
  uint8_t label = 0;  // 1 = malicious ground truth.
  uint8_t is_update = 0;
  uint64_t total_invocations = 0;
  float rac = 0.0f;
  float base_minutes = 0.0f;  // Emulation time net of hook overhead.
  std::string package_name;
};

struct StudyDataset {
  std::vector<StudyRecord> records;

  size_t size() const { return records.size(); }
  size_t NumPositive() const;
};

struct StudyConfig {
  size_t num_apps = 20'000;
  emu::EngineConfig engine;  // Defaults: Google emulator, enhanced, 5K events.
  size_t batch_size = 512;   // Pipeline granularity for parallel emulation.
};

// Builds StudyRecords from (apk, report) pairs: resolves manifest strings
// against the catalogues and extracts the static API view. Reusable by both
// the offline study and the market simulator's retraining sampler.
class StudyRecorder {
 public:
  StudyRecorder(const android::ApiUniverse& universe, const emu::EngineConfig& engine_config);

  StudyRecord BuildRecord(const apk::ApkFile& apk, const emu::EmulationReport& report) const;

 private:
  const android::ApiUniverse& universe_;
  double hook_minutes_per_invocation_ = 0.0;
  std::unordered_map<std::string, android::PermissionId> permission_ids_;
  std::unordered_map<std::string, android::IntentId> intent_ids_;
};

// Streams `config.num_apps` submissions from the generator through APK
// materialization -> parsing -> emulation (track-all) and collects records.
// The generator advances; calling again continues the submission stream.
StudyDataset RunStudy(const android::ApiUniverse& universe, synth::CorpusGenerator& generator,
                      const StudyConfig& config, util::ThreadPool* pool = nullptr);

// Builds an ML dataset by projecting study records onto a schema. Runtime
// intents are included only when their carrier API is in the schema's
// tracked set (the §4.5 collection rule); manifest data is always visible.
ml::Dataset BuildDataset(const StudyDataset& study, const FeatureSchema& schema,
                         const android::ApiUniverse& universe);

}  // namespace apichecker::core

#endif  // APICHECKER_CORE_STUDY_H_
