#include "core/checker.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace apichecker::core {

ApiChecker::ApiChecker(const android::ApiUniverse& universe, ApiCheckerConfig config)
    : universe_(universe), config_(config) {}

void ApiChecker::TrainFromStudy(const StudyDataset& study) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::TraceSpan span("core.train");
  obs::ScopedTimer timer(metrics.histogram(obs::names::kCoreTrainMs));
  {
    obs::TraceSpan selection_span("core.select_key_apis");
    const std::vector<ApiCorrelation> correlations =
        ComputeApiCorrelations(study, universe_.num_apis());
    selection_ = SelectKeyApis(correlations, universe_, study.size(), config_.selection);
    schema_ = FeatureSchema(selection_.key_apis, universe_, config_.features);
  }

  obs::TraceSpan fit_span("core.fit_forest");
  const ml::Dataset data = BuildDataset(study, schema_, universe_);
  model_ = std::make_unique<ml::RandomForest>(config_.forest);
  model_->set_threshold(config_.threshold);
  model_->Train(data);

  metrics.gauge(obs::names::kCoreKeyApis).Set(static_cast<double>(selection_.key_apis.size()));
  metrics.gauge(obs::names::kCoreFeatures).Set(static_cast<double>(schema_.num_features()));
  APICHECKER_SLOG(Debug, "core.trained")
      .With("corpus", study.size())
      .With("key_apis", selection_.key_apis.size())
      .With("features", schema_.num_features());
}

void ApiChecker::RestoreTrained(KeyApiSelection selection, FeatureOptions features,
                                double threshold, ml::RandomForest forest) {
  selection_ = std::move(selection);
  config_.features = features;
  config_.threshold = threshold;
  schema_ = FeatureSchema(selection_.key_apis, universe_, features);
  model_ = std::make_unique<ml::RandomForest>(std::move(forest));
  model_->set_threshold(threshold);
}

emu::TrackedApiSet ApiChecker::MakeTrackedSet() const {
  return emu::TrackedApiSet(selection_.key_apis, universe_.num_apis());
}

ApiChecker::Verdict ApiChecker::Classify(const emu::EmulationReport& report) const {
  Verdict verdict;
  if (model_ == nullptr) {
    return verdict;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Default();
  obs::ScopedTimer timer(metrics.histogram(obs::names::kCoreClassifyLatencyUs),
                         obs::ScopedTimer::Unit::kMicros);
  const ml::SparseRow row = schema_.Encode(report);
  verdict.score = model_->PredictScore(row);
  verdict.malicious = verdict.score >= config_.threshold;
  metrics.histogram(obs::names::kCoreScore).Observe(verdict.score);
  metrics
      .counter(verdict.malicious ? obs::names::kCoreVerdictMaliciousTotal
                                 : obs::names::kCoreVerdictBenignTotal)
      .Increment();
  return verdict;
}

std::vector<std::pair<std::string, double>> ApiChecker::TopFeatures(size_t k) const {
  std::vector<std::pair<std::string, double>> top;
  if (model_ == nullptr) {
    return top;
  }
  const std::vector<double>& importance = model_->feature_importance();
  std::vector<uint32_t> order(importance.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return importance[a] != importance[b] ? importance[a] > importance[b] : a < b;
  });
  for (size_t i = 0; i < order.size() && top.size() < k; ++i) {
    top.emplace_back(schema_.FeatureName(order[i]), importance[order[i]]);
  }
  return top;
}

std::vector<android::ApiId> ApiChecker::KeyApisByImportance() const {
  std::vector<android::ApiId> apis;
  if (model_ == nullptr || !schema_.options().use_apis) {
    return apis;
  }
  const std::vector<double>& importance = model_->feature_importance();
  // API features occupy the schema's leading positions in tracked-API order.
  std::vector<std::pair<double, android::ApiId>> ranked;
  for (android::ApiId api : schema_.tracked_apis()) {
    const int64_t f = schema_.ApiFeature(api);
    const double imp =
        (f >= 0 && static_cast<size_t>(f) < importance.size()) ? importance[f] : 0.0;
    ranked.emplace_back(imp, api);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  apis.reserve(ranked.size());
  for (const auto& [imp, api] : ranked) {
    apis.push_back(api);
  }
  return apis;
}

std::vector<uint8_t> ApiChecker::SerializeModel() const {
  return model_ == nullptr ? std::vector<uint8_t>{} : model_->Serialize();
}

}  // namespace apichecker::core
