// Feature schema: the One-Hot encoding of an app's runtime observations
// (paper §4.2, §4.5). A schema fixes an ordered list of tracked APIs plus
// the permission and intent catalogues; a feature vector has one bit per
// tracked API ("was it invoked"), one per permission ("was it requested"),
// and one per intent ("was it statically registered or seen as a hooked
// API's parameter").

#ifndef APICHECKER_CORE_FEATURE_SCHEMA_H_
#define APICHECKER_CORE_FEATURE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "android/api_universe.h"
#include "emu/engine.h"
#include "ml/dataset.h"

namespace apichecker::core {

// Which feature groups participate (the Fig 10 ablation axes).
struct FeatureOptions {
  bool use_apis = true;         // "A"
  bool use_permissions = true;  // "P"
  bool use_intents = true;      // "I"
  // Histogram encoding (paper §6 future work): instead of one presence bit
  // per API, allocate `frequency_buckets` one-hot bits per API keyed on the
  // log-scale invocation count, retaining frequency information the plain
  // bit vector loses. 0 disables (paper's deployed encoding).
  uint8_t frequency_buckets = 0;

  static FeatureOptions ApisOnly() { return {true, false, false, 0}; }
  static FeatureOptions All() { return {true, true, true, 0}; }
  static FeatureOptions Histogram(uint8_t buckets = 4) { return {true, true, true, buckets}; }

  std::string Label() const;  // e.g. "A+P+I" or "A(hist4)+P+I".
};

class FeatureSchema {
 public:
  FeatureSchema() = default;
  FeatureSchema(std::vector<android::ApiId> tracked_apis, const android::ApiUniverse& universe,
                FeatureOptions options = FeatureOptions::All());

  uint32_t num_features() const { return num_features_; }
  const std::vector<android::ApiId>& tracked_apis() const { return tracked_apis_; }
  const FeatureOptions& options() const { return options_; }

  // Feature index of an API / permission name / intent action, or -1 if the
  // schema does not carry it. Under histogram encoding ApiFeature returns
  // the *base* feature of the API's bucket group; use ApiFeatureForCount for
  // the bucket actually set by a given invocation count.
  int64_t ApiFeature(android::ApiId api) const;
  int64_t ApiFeatureForCount(android::ApiId api, uint32_t invocations) const;
  // Bucket index in [0, frequency_buckets) for an invocation count.
  static uint32_t FrequencyBucket(uint32_t invocations, uint8_t buckets);
  int64_t PermissionFeature(const std::string& name) const;
  int64_t IntentFeature(const std::string& action) const;
  // Id-indexed fast paths (the catalogues are laid out contiguously).
  int64_t PermissionFeatureById(android::PermissionId id) const;
  int64_t IntentFeatureById(android::IntentId id) const;
  bool TracksApi(android::ApiId api) const {
    return api_tracked_.count(api) != 0;
  }

  // Human-readable feature name ("API: ...", "Permission: ...", "Intent: ...")
  // in the short-alias style of the paper's Fig. 13.
  std::string FeatureName(uint32_t feature) const;

  // Encodes one emulation report into a sparse feature row.
  ml::SparseRow Encode(const emu::EmulationReport& report) const;

 private:
  std::vector<android::ApiId> tracked_apis_;
  FeatureOptions options_;
  std::unordered_map<android::ApiId, uint32_t> api_to_feature_;
  std::unordered_map<android::ApiId, uint8_t> api_tracked_;
  int64_t permission_base_ = -1;
  size_t permission_count_ = 0;
  int64_t intent_base_ = -1;
  size_t intent_count_ = 0;
  std::unordered_map<std::string, uint32_t> permission_to_feature_;
  std::unordered_map<std::string, uint32_t> intent_to_feature_;
  std::vector<std::string> feature_names_;
  uint32_t num_features_ = 0;
};

}  // namespace apichecker::core

#endif  // APICHECKER_CORE_FEATURE_SCHEMA_H_
