// Key-API selection (paper §4.3–§4.4): Spearman-rank-correlation ranking of
// every framework API against the malice label, followed by the four-step
// strategy — Set-C (statistically correlated), Set-P (restrictive
// permissions), Set-S (sensitive operations), and their union.

#ifndef APICHECKER_CORE_SELECTION_H_
#define APICHECKER_CORE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "android/api_universe.h"
#include "core/study.h"

namespace apichecker::core {

struct ApiCorrelation {
  android::ApiId api = 0;
  double src = 0.0;       // Spearman rank correlation with the malice label.
  uint32_t support = 0;   // Number of apps that invoked the API.
};

// SRC of every framework API over the study corpus. For binary presence
// features Spearman reduces to the phi coefficient, computed in O(total
// observations) from per-API contingency counts.
std::vector<ApiCorrelation> ComputeApiCorrelations(const StudyDataset& study,
                                                   size_t num_apis);

struct SelectionConfig {
  double src_threshold = 0.2;      // |SRC| below this is a trivial relationship.
  double seldom_fraction = 0.001;  // Invoked by <0.1% of apps = "seldom".
  // Negative-SRC APIs are kept only when invoked by most apps (the paper's
  // 13 frequent common-operation APIs).
  double frequent_fraction = 0.5;
};

struct KeyApiSelection {
  std::vector<android::ApiId> set_c;     // Correlation-selected.
  std::vector<android::ApiId> set_p;     // Restrictive-permission APIs.
  std::vector<android::ApiId> set_s;     // Sensitive-operation APIs.
  std::vector<android::ApiId> key_apis;  // Union, sorted.

  size_t overlap_cp = 0;   // |C ∩ P| (excluding triple overlap).
  size_t overlap_cs = 0;   // |C ∩ S|.
  size_t overlap_ps = 0;   // |P ∩ S|.
  size_t overlap_cps = 0;  // |C ∩ P ∩ S|.

  size_t total_overlapped() const {
    return overlap_cp + overlap_cs + overlap_ps + 2 * overlap_cps;
  }
};

// Steps 1–4 of §4.4. `correlations` must cover every API id in the universe.
KeyApiSelection SelectKeyApis(const std::vector<ApiCorrelation>& correlations,
                              const android::ApiUniverse& universe, size_t corpus_size,
                              const SelectionConfig& config = {});

// Top-n APIs by descending |SRC| among not-seldom APIs — the tracking
// priority order used by Figs 6 and 7.
std::vector<android::ApiId> TopCorrelatedApis(const std::vector<ApiCorrelation>& correlations,
                                              size_t corpus_size, size_t n,
                                              const SelectionConfig& config = {});

}  // namespace apichecker::core

#endif  // APICHECKER_CORE_SELECTION_H_
