#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace apichecker::core {

namespace {

using android::ApiId;

const std::vector<ApiId>& RecordApis(const StudyRecord& record, BaselineSpec::Mode mode) {
  return mode == BaselineSpec::Mode::kStatic ? record.static_apis : record.observed_apis;
}

}  // namespace

std::vector<BaselineSpec> StandardBaselines() {
  using Mode = BaselineSpec::Mode;
  using CK = ml::ClassifierKind;
  return {
      // Static code inspection with a tiny correlated-API budget and a
      // Bayesian/kNN classifier (Sharma et al. [35]).
      {"Sharma et al.", "[35]", Mode::kStatic, CK::kNaiveBayes, 35, false, false,
       0.30, 0.25},
      // Frequency-mined critical APIs + kNN (DroidAPIMiner [1], 169 APIs,
      // ~25 s/app static analysis).
      {"DroidAPIMiner", "[1]", Mode::kStatic, CK::kKnn, 169, false, false, 25.0 / 60.0, 0.25},
      // Manifest-centric: permissions + intents + a restricted API view,
      // kNN (DroidMat [43]).
      {"DroidMat", "[43]", Mode::kStatic, CK::kKnn, 60, true, true, 0.25, 0.25},
      // Dynamic inspection of 19 permission-restricted APIs with SVM, very
      // long emulation (Yang et al. [46], ~18 min/app).
      {"Yang et al.", "[46]", Mode::kDynamic, CK::kSvm, 19, true, false, 18.0, 0.20},
      // Behavioural profiling with a wider dynamic feature set + random
      // forest (DroidCat [9], 354 s/app).
      {"DroidCat", "[9]", Mode::kDynamic, CK::kRandomForest, 122, false, true,
       354.0 / 60.0, 0.20},
      // Big-data dynamic analysis, 25 APIs + SVM (DroidDolphin [44],
      // ~17 min/app).
      {"DroidDolphin", "[44]", Mode::kDynamic, CK::kSvm, 25, false, false, 17.0, 0.20},
      // Hybrid static feature soup + linear SVM (DREBIN [6], ~10 s/app).
      {"DREBIN", "[6]", Mode::kStatic, CK::kSvm, 300, true, true, 10.0 / 60.0, 0.25},
  };
}

BaselineDetector::BaselineDetector(const android::ApiUniverse& universe, BaselineSpec spec,
                                   uint64_t seed)
    : universe_(universe), spec_(std::move(spec)), seed_(seed) {}

void BaselineDetector::Train(const StudyDataset& train) {
  // Rank APIs by |phi| over this recipe's extraction view.
  const size_t num_apis = universe_.num_apis();
  std::vector<uint32_t> count(num_apis, 0), count_pos(num_apis, 0);
  uint64_t n_pos = 0;
  for (const StudyRecord& record : train.records) {
    n_pos += record.label;
    for (ApiId api : RecordApis(record, spec_.mode)) {
      if (api < num_apis) {
        ++count[api];
        count_pos[api] += record.label;
      }
    }
  }
  const double n = static_cast<double>(train.size());
  const double c1 = static_cast<double>(n_pos);
  const double c0 = n - c1;
  std::vector<std::pair<double, ApiId>> ranked;
  ranked.reserve(num_apis);
  for (size_t api = 0; api < num_apis; ++api) {
    if (count[api] < std::max<uint32_t>(3, static_cast<uint32_t>(0.001 * n))) {
      continue;  // Seldom-seen APIs are noise for every recipe.
    }
    const double r1 = count[api];
    const double r0 = n - r1;
    const double n11 = count_pos[api];
    const double denom = std::sqrt(r1 * r0 * c1 * c0);
    const double phi = denom > 0.0 ? (n11 * (r0 - (c1 - n11)) - (r1 - n11) * (c1 - n11)) / denom
                                   : 0.0;
    ranked.emplace_back(std::fabs(phi), static_cast<ApiId>(api));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  selected_apis_.clear();
  for (size_t i = 0; i < ranked.size() && selected_apis_.size() < spec_.num_apis; ++i) {
    selected_apis_.push_back(ranked[i].second);
  }
  std::sort(selected_apis_.begin(), selected_apis_.end());

  model_ = ml::MakeClassifier(spec_.classifier, seed_);
  model_->Train(Featurize(train));
}

ml::Dataset BaselineDetector::Featurize(const StudyDataset& study) const {
  std::unordered_map<ApiId, uint32_t> api_feature;
  for (uint32_t i = 0; i < selected_apis_.size(); ++i) {
    api_feature.emplace(selected_apis_[i], i);
  }
  const uint32_t perm_base = static_cast<uint32_t>(selected_apis_.size());
  const uint32_t intent_base =
      perm_base +
      (spec_.use_permissions ? static_cast<uint32_t>(universe_.permissions().size()) : 0);
  const uint32_t total =
      intent_base + (spec_.use_intents ? static_cast<uint32_t>(universe_.intents().size()) : 0);

  ml::Dataset data;
  data.num_features = total;
  for (const StudyRecord& record : study.records) {
    ml::SparseRow row;
    for (ApiId api : RecordApis(record, spec_.mode)) {
      const auto it = api_feature.find(api);
      if (it != api_feature.end()) {
        row.push_back(it->second);
      }
    }
    if (spec_.use_permissions) {
      for (android::PermissionId p : record.permissions) {
        row.push_back(perm_base + p);
      }
    }
    if (spec_.use_intents) {
      for (android::IntentId intent : record.manifest_intents) {
        row.push_back(intent_base + intent);
      }
      if (spec_.mode == BaselineSpec::Mode::kDynamic) {
        for (const auto& [intent, carrier] : record.runtime_intents) {
          row.push_back(intent_base + intent);
        }
      }
    }
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    data.Add(std::move(row), record.label);
  }
  return data;
}

ml::ConfusionMatrix BaselineDetector::Evaluate(const StudyDataset& test) const {
  return model_->Evaluate(Featurize(test));
}

double BaselineDetector::SampleAnalysisMinutes(util::Rng& rng) const {
  return rng.LogNormal(spec_.analysis_minutes_median, spec_.analysis_minutes_sigma);
}

}  // namespace apichecker::core
